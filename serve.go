package chl

import (
	"crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/delta"
	"repro/internal/label"
	"repro/internal/shard"
)

// maxBatchBytes bounds a /batch request body; past this the decoder never
// runs, so a hostile client cannot make the server buffer gigabytes.
const maxBatchBytes = 64 << 20

// fxHandle owns one FlatIndex shared by every snapshot generation built
// over it: the frozen-only generation plus each patch-batch generation
// layered on the same labels. The index is closed by whichever release
// drops the handle's count to zero — patch batches swap snapshots
// without remapping (or double-closing) the file.
type fxHandle struct {
	fx        *FlatIndex
	refs      atomic.Int64
	closeOnce sync.Once
}

func newFxHandle(fx *FlatIndex) *fxHandle {
	h := &fxHandle{fx: fx}
	h.refs.Store(1)
	return h
}

func (h *fxHandle) acquire() *fxHandle {
	h.refs.Add(1)
	return h
}

func (h *fxHandle) release() {
	if h.refs.Add(-1) == 0 {
		h.closeOnce.Do(func() { h.fx.Close() })
	}
}

// Snapshot is one immutable generation of a served index: a flat index
// (usually mmap-backed), its batch engine, a cache born with it, and —
// under outstanding edge updates — the delta overlay correcting its
// frozen answers. Snapshots are reference-counted: the Server holds one
// reference while the snapshot is current, and every in-flight query
// holds one from Acquire to Release. The underlying file mapping is
// unmapped when the last snapshot sharing it drains — after a hot swap
// the old generation retires naturally, with no query ever touching
// unmapped memory and no reader ever blocking a reload.
type Snapshot struct {
	handle   *fxHandle
	fx       *FlatIndex
	eng      *BatchEngine
	ov       *delta.Overlay // nil: frozen index only
	path     string
	gen      uint64
	ident    uint64 // snapshot identity: content hash, mixed with the patch-log hash under an overlay
	loadedAt time.Time

	refs      atomic.Int64
	closeOnce sync.Once
}

// Index returns the snapshot's flat index.
func (sn *Snapshot) Index() *FlatIndex { return sn.fx }

// Engine returns the snapshot's batch engine (cache attached).
func (sn *Snapshot) Engine() *BatchEngine { return sn.eng }

// Generation returns the snapshot's monotonically increasing generation
// number (1 for the index the server started with).
func (sn *Snapshot) Generation() uint64 { return sn.gen }

// Path returns the file this snapshot was loaded from ("" when the
// server was built from an in-memory index).
func (sn *Snapshot) Path() string { return sn.path }

// Ident returns the snapshot's content identity: FlatIndex.ContentHash
// for a frozen snapshot — equal across processes and restarts exactly
// when the served bytes are equal — mixed with the patch log's hash
// when a delta overlay is attached, so every patch batch changes the
// identity exactly once. Shard servers stamp it on every router-facing
// response; the router retires its answer cache only when a shard's
// ident actually changes, so coordinated same-content restarts keep
// the cache warm.
func (sn *Snapshot) Ident() uint64 { return sn.ident }

// Overlay returns the snapshot's delta overlay (nil when no edge
// updates are outstanding).
func (sn *Snapshot) Overlay() *delta.Overlay { return sn.ov }

// Release returns a reference taken by Server.Acquire. The last release
// of a retired snapshot drops its index reference; the mapping closes
// when no generation shares it any longer.
func (sn *Snapshot) Release() {
	if sn.refs.Add(-1) == 0 {
		sn.closeOnce.Do(func() { sn.handle.release() })
	}
}

// Server serves point-to-point distance queries from a hot-swappable
// snapshot of a flat index. The current snapshot is an atomic pointer:
// queries acquire it wait-free, and Reload publishes a fully validated
// replacement in one store — in-flight queries finish on the generation
// they started on, new queries see the new one, and the old mapping is
// unmapped only after its last query drains. A failed reload leaves the
// current snapshot serving untouched.
//
// Handler exposes the HTTP API (/dist, /batch, /stats, /reload,
// /healthz, /metrics, /shardquery) documented in README.md; the query
// methods serve embedders directly. SetShard turns the server into one
// shard of a split cluster (see Router); SetPrefault warms fresh
// mappings before they go live.
type Server struct {
	cur       atomic.Pointer[Snapshot]
	mu        sync.Mutex // serializes Reload, Update, and Compact
	cacheSize int
	gen       atomic.Uint64
	queries   atomic.Int64
	reloads   atomic.Int64
	start     time.Time
	clock     Clock // time source for uptime, load stamps, and metrics; FakeClock in tests
	metrics   *httpMetrics

	// Dynamic-update state (EnableUpdates), all guarded by mu. baseGraph
	// is the graph the served labels were built from; patchOps is the
	// patch log accumulated since the last compaction (the journal's
	// contents); patchBatches counts applied batches and stamps overlay
	// epochs. The query path never reads these — it sees only the
	// overlay frozen into the current snapshot.
	baseGraph    *Graph
	journal      string
	patchOps     []EdgeOp
	patchBatches uint64
	updates      atomic.Int64
	compactions  atomic.Int64

	// epoch is a per-process stamp reported alongside the generation on
	// the router-facing responses. Generations restart at 1 in every
	// process, so a shard restart (possibly serving different content)
	// would be indistinguishable from "nothing changed" by generation
	// alone; the (epoch, generation) pair is unique per snapshot across
	// restarts, which is what the Router's cache retirement keys on.
	// Epochs are ordered by process start time (millisecond resolution,
	// random low bits), so the router can also tell a delayed response
	// from a dead process apart from a fresh restart.
	epoch uint64

	// Shard identity, set by SetShard before serving: when part is
	// non-nil the server owns only its vertex range and the query
	// handlers reject misrouted vertices with 421. shardN pins the
	// cluster's vertex space (the count served when SetShard ran):
	// reloads of a shard server reject files over a different space, so
	// a wrong-cluster file is a loud 400, not silently wrong answers.
	shardID int
	part    *shard.Partition
	shardN  int
	owned   []uint64 // ownership bitmap over [0,shardN), built once by SetShard
	// shardDirected pins the directedness of the slice this shard serves
	// (recorded by SetShard): a reload must not swap a directed slice for
	// an undirected one or vice versa — the router's join protocol and
	// cache keying depend on every shard agreeing.
	shardDirected bool

	// prefault asks reload to fault a fresh mapping fully in before the
	// swap (FlatIndex.Prefault), trading reload latency for a warm first
	// generation of queries.
	prefault atomic.Bool
}

// NewServer opens the flat index file at path (memory-mapped when
// possible — see OpenFlat) and returns a server for it. cacheSize bounds
// the per-snapshot answer cache; <= 0 disables caching.
func NewServer(path string, cacheSize int) (*Server, error) {
	fx, err := OpenFlat(path)
	if err != nil {
		return nil, err
	}
	s := newServer(cacheSize)
	s.install(fx, path)
	return s, nil
}

// NewServerFromFlat wraps an already loaded or freshly frozen index. The
// server takes ownership of fx; Reload still works and swaps to flat
// index files.
func NewServerFromFlat(fx *FlatIndex, cacheSize int) *Server {
	s := newServer(cacheSize)
	s.install(fx, "")
	return s
}

func newServer(cacheSize int) *Server {
	var e [8]byte
	// Low bits stay random so two restarts in the same millisecond still
	// get distinct epochs (rand failure degrades to zeros: distinctness
	// then rests on the clock alone, which is fine — the epoch is an
	// identity, not a secret).
	_, _ = rand.Read(e[:])
	// Epoch layout: milliseconds since the Unix epoch in the high bits,
	// 10 random bits below, truncated to 53 bits so the value survives a
	// float64 round trip (JSON consumers, including the router's /reload
	// proxy, decode numbers into float64). Millisecond ordering is what
	// lets the router order epochs by process start; 53 bits last until
	// the year ~2248.
	//chlvet:allow clockcheck -- the epoch is a process identity ordered by real start time across restarts; a fake clock here would break restart detection, the one thing it exists for
	epoch := uint64(time.Now().UnixMilli())<<10 | uint64(binary.LittleEndian.Uint16(e[:])&0x3ff)
	clock := Clock(realClock{})
	return &Server{
		cacheSize: cacheSize,
		start:     clock.Now(),
		clock:     clock,
		epoch:     epoch & (1<<53 - 1),
		shardID:   -1,
		metrics: newHTTPMetrics(clock, "/dist", "/batch", "/paths", "/knn", "/matrix",
			"/stats", "/reload", "/update", "/compact", "/healthz", "/shardquery", "/shardscan"),
	}
}

// setClock swaps the server's time source (tests inject a FakeClock).
// It re-stamps the start time so uptime counts in the new clock's
// frame, and points the metrics middleware at the same source.
func (s *Server) setClock(c Clock) {
	s.clock = c
	s.start = c.Now()
	s.metrics.clock = c
}

// SetShard declares this server to be shard id of partition p: the query
// endpoints then serve only vertices the shard owns (misrouted requests
// get 421 Misdirected Request), and /shardquery returns label rows for
// the Router's cross-shard hub joins. Call before serving; shard identity
// is fixed for the server's lifetime.
func (s *Server) SetShard(id int, p *shard.Partition) error {
	if p == nil {
		return fmt.Errorf("chl: SetShard needs a partition")
	}
	if id < 0 || id >= p.Shards() {
		return fmt.Errorf("chl: shard id %d out of range [0,%d)", id, p.Shards())
	}
	sn := s.Acquire()
	defer sn.Release()
	n := sn.fx.NumVertices()
	// One ring lookup per vertex, once: the query handlers' ownership
	// checks and every reload's shard-file validation read this bitmap
	// instead of re-hashing.
	owned := make([]uint64, (n+63)/64)
	for v := 0; v < n; v++ {
		if p.Owner(v) == id {
			owned[v>>6] |= 1 << (v & 63)
		}
	}
	s.shardID, s.part, s.shardN, s.owned = id, p, n, owned
	s.shardDirected = sn.fx.Directed()
	if err := s.checkShardFile(sn.fx); err != nil {
		s.shardID, s.part, s.shardN, s.owned = -1, nil, 0, nil
		return err
	}
	return nil
}

// checkShardFile verifies that fx plausibly is this shard's slice: no
// vertex outside the shard's ownership may carry label runs. This is
// what catches a shard pointed at the wrong slice file, or at a slice
// from a re-split cluster (different shard count or ring seed) whose
// vertex count happens to match — both would otherwise serve
// reachable:false for vertices whose runs the file doesn't hold,
// silently. Called by SetShard and by every shard reload; the scan is
// one linear pass over the bitmap and the offsets array, no ring
// lookups.
func (s *Server) checkShardFile(fx *FlatIndex) error {
	n := fx.NumVertices()
	if n != s.shardN {
		return fmt.Errorf("chl: index covers %d vertices but this shard serves a %d-vertex cluster", n, s.shardN)
	}
	if fx.Directed() != s.shardDirected {
		return fmt.Errorf("chl: index directed=%v but this shard serves a directed=%v cluster — wrong shard file?", fx.Directed(), s.shardDirected)
	}
	for v := 0; v < n; v++ {
		if s.owned[v>>6]&(1<<(v&63)) == 0 && fx.labelCount(v) > 0 {
			return fmt.Errorf("chl: index holds labels for vertex %d, which shard %d does not own — wrong shard file, or a file from a re-split cluster?", v, s.shardID)
		}
	}
	if fx.Directed() {
		for v := 0; v < n; v++ {
			if s.owned[v>>6]&(1<<(v&63)) == 0 && fx.backwardLabelCount(v) > 0 {
				return fmt.Errorf("chl: index holds backward labels for vertex %d, which shard %d does not own — wrong shard file, or a file from a re-split cluster?", v, s.shardID)
			}
		}
	}
	return nil
}

// SetPrefault controls whether reloads fault the incoming mapping fully
// in before swapping it live (see FlatIndex.Prefault). Enabling it also
// prefaults the currently served snapshot. Prefault trades reload latency
// for first-query latency; it matters for large mapped indexes on cold
// page cache.
func (s *Server) SetPrefault(on bool) {
	s.prefault.Store(on)
	if on {
		sn := s.Acquire()
		sn.fx.Prefault()
		sn.Release()
	}
}

// owns reports whether this server serves vertex v (always true for a
// non-shard server). Shard ownership is a bitmap test, not a ring
// lookup — SetShard precomputed it.
func (s *Server) owns(v int) bool {
	return s.part == nil || s.owned[v>>6]&(1<<(v&63)) != 0
}

// install publishes fx as the next generation and retires the previous
// snapshot (dropping the server's reference; the mapping closes when the
// last in-flight query releases).
func (s *Server) install(fx *FlatIndex, path string) *Snapshot {
	return s.installHandle(newFxHandle(fx), path, nil)
}

// installHandle publishes one generation over an index handle: a fresh
// handle for loads and compactions, the current snapshot's own
// (re-acquired) handle for patch batches, which swap generations
// without remapping the file. Every generation is born with a fresh
// cache — under an overlay the cache instance is the patch-epoch
// discriminant, so pre-patch answers can never outlive the graph they
// were true of.
func (s *Server) installHandle(h *fxHandle, path string, ov *delta.Overlay) *Snapshot {
	fx := h.fx
	eng := NewBatchEngineFlat(fx)
	eng.SetCache(newCacheFor(fx, s.cacheSize))
	eng.SetOverlay(ov)
	ident := fx.ContentHash()
	if ov != nil && !ov.Empty() {
		ident = mixIdent(ident, ov.Hash())
	}
	sn := &Snapshot{
		handle:   h,
		fx:       fx,
		eng:      eng,
		ov:       eng.Overlay(),
		path:     path,
		gen:      s.gen.Add(1),
		ident:    ident,
		loadedAt: s.clock.Now(),
	}
	sn.refs.Store(1) // the server's own reference
	if old := s.cur.Swap(sn); old != nil {
		old.Release()
	}
	return sn
}

// mixIdent folds the patch log's hash into a snapshot's content
// identity: same FNV-1a over both words, truncated to the same 53 bits
// every identity here lives in (JSON consumers decode into float64),
// never zero. Two servers serving the same index under the same patch
// log agree; any patch batch moves the identity exactly once.
func mixIdent(base, patch uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, x := range [2]uint64{base, patch} {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	h &= 1<<53 - 1
	if h == 0 {
		h = 1
	}
	return h
}

// Acquire returns the current snapshot with a reference held; the caller
// must Release it when done querying. Acquire is wait-free against
// concurrent reloads. It panics on a closed server — a loud failure
// beats the alternative, which would be handing out a generation whose
// mapping is already released.
func (s *Server) Acquire() *Snapshot {
	for {
		sn := s.cur.Load()
		if sn == nil {
			panic("chl: Server used after Close")
		}
		sn.refs.Add(1)
		if s.cur.Load() == sn {
			return sn
		}
		// A reload (or Close) won the race; this snapshot may be
		// draining. Put the reference back and take the new generation.
		sn.Release()
	}
}

// Reload loads the flat index file at path (the current snapshot's own
// file when path is "", e.g. after it was atomically replaced on disk)
// and hot-swaps it in, returning the new generation number. Queries in
// flight on the old snapshot finish untouched; its mapping is closed
// after the last one drains. On error the current snapshot keeps
// serving. Reloads are serialized; queries are never blocked.
func (s *Server) Reload(path string) (uint64, error) {
	sn, err := s.reload(path)
	if err != nil {
		return 0, err
	}
	return sn.gen, nil
}

// reload returns the installed snapshot so handleReload can describe
// exactly the generation it installed (not whatever a racing reload has
// since published). The caller holds no reference: only the snapshot's
// immutable metadata may be read, never its label arrays.
func (s *Server) reload(path string) (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.patchOps) > 0 {
		return nil, fmt.Errorf("chl: %d edge updates are outstanding; compact (POST /compact) before reloading — a reload would silently drop them", len(s.patchOps))
	}
	if path == "" {
		cur := s.cur.Load()
		if cur == nil {
			return nil, fmt.Errorf("chl: Server used after Close")
		}
		path = cur.path
		if path == "" {
			return nil, fmt.Errorf("chl: reload needs a path: the server was built from an in-memory index")
		}
	}
	fx, err := OpenFlat(path)
	if err != nil {
		return nil, err
	}
	// A shard server's slice is pinned by its cluster manifest; a reload
	// must not smuggle in a file from a different cluster build — not a
	// different vertex space, and not a re-split of the same graph under
	// another ring. (Non-shard servers may legitimately swap between
	// arbitrary indexes.)
	if s.part != nil {
		if err := s.checkShardFile(fx); err != nil {
			fx.Close()
			return nil, fmt.Errorf("chl: reload %s rejected: %w", path, err)
		}
	}
	// An updates-enabled server's base graph must keep describing the
	// served labels: a reload may swap in a rebuild of the same graph
	// (same vertex space, same directedness — compaction writes exactly
	// that), not an arbitrary other index.
	if s.baseGraph != nil {
		if n := fx.NumVertices(); n != s.baseGraph.NumVertices() {
			fx.Close()
			return nil, fmt.Errorf("chl: reload %s rejected: index covers %d vertices but updates are enabled over a %d-vertex base graph", path, n, s.baseGraph.NumVertices())
		}
		if fx.Directed() != s.baseGraph.Directed() {
			fx.Close()
			return nil, fmt.Errorf("chl: reload %s rejected: index directed=%v but updates are enabled over a directed=%v base graph", path, fx.Directed(), s.baseGraph.Directed())
		}
	}
	if s.prefault.Load() {
		// Fault the new mapping in while the old generation still serves;
		// the swap below then publishes an already-warm snapshot.
		fx.Prefault()
	}
	sn := s.install(fx, path)
	s.reloads.Add(1)
	return sn, nil
}

// Close retires the current snapshot (its mapping closes once in-flight
// queries drain). The server must not be queried afterwards: the
// current-snapshot pointer is cleared first, so a racing Acquire panics
// rather than touching unmapped memory.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn := s.cur.Swap(nil); sn != nil {
		sn.Release()
	}
	return nil
}

// EnableUpdates turns on dynamic edge updates (POST /update): g must be
// the exact graph the served labels were built from — the correction
// machinery seeds patched-graph Dijkstras with frozen label distances,
// so a mismatched graph silently corrupts answers. journalPath, when
// non-empty, names the patch journal: every accepted batch is appended
// (and fsynced) before it is served, and any ops already in the journal
// are replayed now, so a restarted server resumes exactly the patched
// state it last acknowledged. Shard servers cannot enable updates —
// corrections need the whole vertex space, so the update path lives on
// plain servers and the Router.
func (s *Server) EnableUpdates(g *Graph, journalPath string) error {
	if g == nil {
		return fmt.Errorf("chl: EnableUpdates needs the base graph the served index was built from")
	}
	if s.part != nil {
		return fmt.Errorf("chl: shard servers cannot serve updates; enable them on the cluster's router instead")
	}
	sn := s.Acquire()
	n, directed := sn.fx.NumVertices(), sn.fx.Directed()
	sn.Release()
	if g.NumVertices() != n {
		return fmt.Errorf("chl: base graph covers %d vertices but the served index covers %d", g.NumVertices(), n)
	}
	if g.Directed() != directed {
		return fmt.Errorf("chl: base graph directed=%v but the served index directed=%v", g.Directed(), directed)
	}
	s.mu.Lock()
	s.baseGraph, s.journal = g, journalPath
	s.mu.Unlock()
	if journalPath != "" {
		ops, err := delta.ReadJournal(journalPath)
		if err != nil {
			return fmt.Errorf("chl: reading update journal: %w", err)
		}
		if len(ops) > 0 {
			if _, err := s.applyOps(ops, false); err != nil {
				return fmt.Errorf("chl: replaying update journal %s: %w", journalPath, err)
			}
		}
	}
	return nil
}

// Update applies a batch of edge operations: the ops are validated
// against the patched graph so far, journaled (when a journal is
// configured), folded into a fresh delta overlay, and published as a
// new snapshot generation sharing the current frozen index — queries
// in flight finish on the generation they started on, and every query
// from here on is overlay-corrected. Returns the installed snapshot's
// generation.
func (s *Server) Update(ops []EdgeOp) (uint64, error) {
	sn, err := s.applyOps(ops, true)
	if err != nil {
		return 0, err
	}
	return sn.gen, nil
}

// applyOps folds ops onto the outstanding patch log and publishes the
// resulting overlay. journal=false replays already-journaled ops
// (EnableUpdates) without re-appending them.
func (s *Server) applyOps(ops []EdgeOp, journal bool) (*Snapshot, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("chl: empty update batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.baseGraph == nil {
		return nil, fmt.Errorf("chl: updates are not enabled on this server (EnableUpdates, or start with -graph)")
	}
	combined := make([]EdgeOp, 0, len(s.patchOps)+len(ops))
	combined = append(append(combined, s.patchOps...), ops...)
	red, err := delta.Reduce(s.baseGraph, combined)
	if err != nil {
		return nil, err
	}
	cur := s.cur.Load()
	if cur == nil {
		return nil, fmt.Errorf("chl: Server used after Close")
	}
	fx := cur.fx
	ov, err := delta.NewOverlay(red, combined, s.patchBatches+1, func(u, v int) float64 {
		return fx.Query(u, v)
	})
	if err != nil {
		return nil, err
	}
	// Journal-ahead: the batch is durable before any query can observe
	// it, so a crash between here and the swap replays to a state at
	// least as new as anything a client saw acknowledged.
	if journal && s.journal != "" {
		if err := delta.AppendJournal(s.journal, ops); err != nil {
			return nil, fmt.Errorf("chl: journaling update: %w", err)
		}
	}
	s.patchOps, s.patchBatches = combined, s.patchBatches+1
	s.updates.Add(1)
	return s.installHandle(cur.handle.acquire(), cur.path, ov), nil
}

// Compact folds the outstanding patch log into a fresh frozen index:
// rebuild over the patched graph, freeze (compressed when the retiring
// snapshot was), persist to path when given (atomic rename; path ""
// reuses the retiring snapshot's file, or stays in memory when it had
// none), then hot-swap — the patched graph becomes the new base, the
// overlay disappears, and the journal is truncated. Queries keep
// flowing on the overlay generation for the whole rebuild; only other
// reloads/updates/compactions serialize behind it. Returns the new
// generation.
func (s *Server) Compact(path string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.baseGraph == nil {
		return 0, fmt.Errorf("chl: updates are not enabled on this server")
	}
	if len(s.patchOps) == 0 {
		return 0, fmt.Errorf("chl: nothing to compact: no edge updates are outstanding")
	}
	patched, err := delta.ApplyPatch(s.baseGraph, s.patchOps)
	if err != nil {
		return 0, err
	}
	ix, err := Build(patched, Options{})
	if err != nil {
		return 0, fmt.Errorf("chl: compaction rebuild: %w", err)
	}
	cur := s.cur.Load()
	if cur == nil {
		return 0, fmt.Errorf("chl: Server used after Close")
	}
	var fx *FlatIndex
	if cur.fx.Compressed() {
		fx, err = ix.FreezeCompressed()
	} else {
		fx, err = ix.Freeze()
	}
	if err != nil {
		return 0, fmt.Errorf("chl: compaction freeze: %w", err)
	}
	if path == "" {
		path = cur.path
	}
	if path != "" {
		tmp := path + ".compact.tmp"
		if err := fx.SaveFile(tmp); err != nil {
			return 0, fmt.Errorf("chl: compaction save: %w", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return 0, fmt.Errorf("chl: compaction rename: %w", err)
		}
		if fx, err = OpenFlat(path); err != nil {
			return 0, fmt.Errorf("chl: compaction reopen: %w", err)
		}
	}
	if s.prefault.Load() {
		fx.Prefault()
	}
	sn := s.installHandle(newFxHandle(fx), path, nil)
	s.baseGraph, s.patchOps = patched, nil
	if s.journal != "" {
		if err := delta.TruncateJournal(s.journal); err != nil {
			return 0, fmt.Errorf("chl: truncating journal after compaction (updates ARE compacted into generation %d; clear %s by hand before restarting): %w", sn.gen, s.journal, err)
		}
	}
	s.compactions.Add(1)
	return sn.gen, nil
}

// Query answers one point-to-point query on the current snapshot,
// through its cache.
func (s *Server) Query(u, v int) float64 {
	d, _, _ := s.QueryHub(u, v)
	return d
}

// QueryHub answers one query with its witness hub on the current
// snapshot, through its cache.
func (s *Server) QueryHub(u, v int) (dist float64, hub int, ok bool) {
	sn := s.Acquire()
	defer sn.Release()
	s.queries.Add(1)
	return sn.eng.QueryHub(u, v)
}

// Batch answers a batch of queries on the current snapshot.
func (s *Server) Batch(pairs []QueryPair) []float64 {
	sn := s.Acquire()
	defer sn.Release()
	s.queries.Add(int64(len(pairs)))
	return sn.eng.Batch(pairs)
}

// Path reconstructs the shortest-path witness chain between u and v on
// the current snapshot; segment queries go through the snapshot's
// cache (see BatchEngine.Path).
func (s *Server) Path(u, v int) (dist float64, path []int, reachable bool, err error) {
	sn := s.Acquire()
	defer sn.Release()
	s.queries.Add(1)
	return sn.eng.Path(u, v)
}

// KNN returns up to k nearest targets from u on the current snapshot,
// seeding the snapshot's pair cache with the results (see
// BatchEngine.KNN).
func (s *Server) KNN(u, k int) []Neighbor {
	sn := s.Acquire()
	defer sn.Release()
	s.queries.Add(1)
	return sn.eng.KNN(u, k)
}

// ServerStats is the /stats response: the current snapshot's shape and
// provenance plus the server's cumulative counters.
type ServerStats struct {
	Vertices      int         `json:"vertices"`
	Labels        int64       `json:"labels"`
	MemoryBytes   int64       `json:"memory_bytes"`
	Mapped        bool        `json:"mapped"`
	Directed      bool        `json:"directed"`
	Compressed    bool        `json:"compressed"`
	Path          string      `json:"path,omitempty"`
	Generation    uint64      `json:"generation"`
	LoadedAt      time.Time   `json:"loaded_at"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	Queries       int64       `json:"queries_total"`
	Reloads       int64       `json:"reloads_total"`
	Updates       int64       `json:"updates_total,omitempty"`
	Compactions   int64       `json:"compactions_total,omitempty"`
	Patch         *PatchStats `json:"patch,omitempty"`
	Cache         *CacheStats `json:"cache,omitempty"`
	Shard         *ShardStats `json:"shard,omitempty"`
}

// PatchStats describes the outstanding delta overlay (see
// delta.Overlay.Stat): absent from /stats when no updates are
// outstanding.
type PatchStats = delta.Stats

// ShardStats identifies a shard server within its cluster.
type ShardStats struct {
	ID     int `json:"id"`
	Shards int `json:"shards"`
}

// Stats reports the server's current state.
func (s *Server) Stats() ServerStats {
	sn := s.Acquire()
	defer sn.Release()
	st := ServerStats{
		Vertices:      sn.fx.NumVertices(),
		Labels:        sn.fx.TotalLabels(),
		MemoryBytes:   sn.fx.TotalMemory(),
		Mapped:        sn.fx.Mapped(),
		Directed:      sn.fx.Directed(),
		Compressed:    sn.fx.Compressed(),
		Path:          sn.path,
		Generation:    sn.gen,
		LoadedAt:      sn.loadedAt,
		UptimeSeconds: s.clock.Now().Sub(s.start).Seconds(),
		Queries:       s.queries.Load(),
		Reloads:       s.reloads.Load(),
		Updates:       s.updates.Load(),
		Compactions:   s.compactions.Load(),
	}
	if sn.ov != nil {
		ps := sn.ov.Stat()
		st.Patch = &ps
	}
	if c := sn.eng.Cache(); c != nil {
		cs := c.Stats()
		st.Cache = &cs
	}
	if s.part != nil {
		st.Shard = &ShardStats{ID: s.shardID, Shards: s.part.Shards()}
	}
	return st
}

// Handler returns the HTTP API: GET /dist, POST /batch, GET /paths,
// GET /knn, POST /matrix (NDJSON-streamed), GET /stats, POST /reload,
// GET /healthz, GET /metrics (Prometheus text format with per-endpoint
// latency histograms), and — for the sharded tier — POST /shardquery
// and POST /shardscan. Every error is a JSON body {"error": "..."}
// with a precise status code; see README.md for the full
// request/response schemas.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/dist", s.metrics.wrap("/dist", s.handleDist))
	mux.HandleFunc("/batch", s.metrics.wrap("/batch", s.handleBatch))
	mux.HandleFunc("/paths", s.metrics.wrap("/paths", s.handlePaths))
	mux.HandleFunc("/knn", s.metrics.wrap("/knn", s.handleKNN))
	mux.HandleFunc("/matrix", s.metrics.wrap("/matrix", s.handleMatrix))
	mux.HandleFunc("/stats", s.metrics.wrap("/stats", s.handleStats))
	mux.HandleFunc("/reload", s.metrics.wrap("/reload", s.handleReload))
	mux.HandleFunc("/update", s.metrics.wrap("/update", s.handleUpdate))
	mux.HandleFunc("/compact", s.metrics.wrap("/compact", s.handleCompact))
	mux.HandleFunc("/healthz", s.metrics.wrap("/healthz", s.handleHealthz))
	mux.HandleFunc("/shardquery", s.metrics.wrap("/shardquery", s.handleShardQuery))
	mux.HandleFunc("/shardscan", s.metrics.wrap("/shardscan", s.handleShardScan))
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleDist(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /dist?u=&v=")
		return
	}
	sn := s.Acquire()
	defer sn.Release()
	n := sn.fx.NumVertices()
	u, err1 := strconv.Atoi(r.URL.Query().Get("u"))
	v, err2 := strconv.Atoi(r.URL.Query().Get("v"))
	if err1 != nil || err2 != nil {
		httpError(w, http.StatusBadRequest, "u and v must be integer vertex ids")
		return
	}
	if u < 0 || v < 0 || u >= n || v >= n {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("vertex ids must be in [0,%d)", n))
		return
	}
	if !s.owns(u) || !s.owns(v) {
		s.misdirected(w, u, v)
		return
	}
	s.queries.Add(1)
	d, hub, ok := sn.eng.QueryHub(u, v)
	resp := map[string]any{"u": u, "v": v, "reachable": ok}
	if s.part != nil {
		// Snapshot identity for the router's cache retirement, plus the
		// slice's directedness so the router can reject drift on the
		// same-shard path too; plain servers keep the documented public
		// schema.
		resp["generation"], resp["epoch"] = sn.gen, s.epoch
		resp["ident"] = sn.ident
		resp["directed"] = sn.fx.Directed()
	}
	if ok {
		resp["dist"] = d
		resp["hub"] = hub
	}
	writeJSON(w, http.StatusOK, resp)
}

// misdirected rejects a query for vertices this shard does not own. The
// router never produces these; a 421 therefore means a client bypassed
// the router or the cluster's manifests disagree.
func (s *Server) misdirected(w http.ResponseWriter, us ...int) {
	for _, u := range us {
		if !s.owns(u) {
			writeJSON(w, http.StatusMisdirectedRequest, map[string]any{
				"error": fmt.Sprintf("vertex %d is not owned by shard %d; route through the cluster's router", u, s.shardID),
				"shard": s.shardID,
			})
			return
		}
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON array of [u,v] pairs")
		return
	}
	sn := s.Acquire()
	defer sn.Release()
	pairs, ok := decodeBatchBody(w, r, sn.fx.NumVertices())
	if !ok {
		return
	}
	if s.part != nil {
		for _, p := range pairs {
			if !s.owns(p.U) || !s.owns(p.V) {
				s.misdirected(w, p.U, p.V)
				return
			}
		}
	}
	s.queries.Add(int64(len(pairs)))
	dists := sn.eng.Batch(pairs)
	for i, d := range dists {
		if d == Infinity {
			dists[i] = -1 // JSON has no +Inf
		}
	}
	resp := map[string]any{"dists": dists}
	if s.part != nil {
		resp["generation"], resp["epoch"] = sn.gen, s.epoch
		resp["ident"] = sn.ident
		resp["directed"] = sn.fx.Directed()
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeBatchBody parses a /batch request body — a JSON array of [u,v]
// pairs — bounds-checking every id against n. On failure it writes the
// error response and returns ok=false. Shared by the single-process
// server and the Router, which must reject exactly the same bodies.
func decodeBatchBody(w http.ResponseWriter, r *http.Request, n int) ([]QueryPair, bool) {
	// Decode into slices, not [2]int arrays: encoding/json silently
	// discards excess elements when filling a fixed-size array, and a
	// malformed pair must be a 400, not a quietly wrong answer.
	var raw [][]int
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBytes)
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		code := http.StatusBadRequest
		if _, tooLarge := err.(*http.MaxBytesError); tooLarge {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, "body must be a JSON array of [u,v] pairs: "+err.Error())
		return nil, false
	}
	pairs := make([]QueryPair, len(raw))
	for i, p := range raw {
		if len(p) != 2 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("pair %d has %d elements, want [u,v]", i, len(p)))
			return nil, false
		}
		if p[0] < 0 || p[1] < 0 || p[0] >= n || p[1] >= n {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("pair %d = [%d,%d] out of range [0,%d)", i, p[0], p[1], n))
			return nil, false
		}
		pairs[i] = QueryPair{U: p[0], V: p[1]}
	}
	return pairs, true
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /stats")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST /reload")
		return
	}
	path := r.URL.Query().Get("path")
	if path == "" {
		// Optional JSON body {"path": "..."}; an empty body means
		// "reload my current file". A malformed body is a 400, not a
		// silent reload of the old file the operator didn't ask for.
		var body struct {
			Path string `json:"path"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		switch err := dec.Decode(&body); {
		case err == nil:
			path = body.Path
		case errors.Is(err, io.EOF): // empty body
		default:
			httpError(w, http.StatusBadRequest, "body must be empty or a JSON object {\"path\":\"...\"}: "+err.Error())
			return
		}
	}
	sn, err := s.reload(path)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Describe the snapshot this request installed; a racing reload may
	// already have superseded it, but the response must be coherent.
	resp := map[string]any{
		"generation": sn.gen,
		"path":       sn.path,
		"mapped":     sn.fx.Mapped(),
		"compressed": sn.fx.Compressed(),
		"vertices":   sn.fx.NumVertices(),
		"labels":     sn.fx.TotalLabels(),
	}
	if s.part != nil {
		resp["epoch"] = s.epoch
		resp["ident"] = sn.ident
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxPatchBytes bounds a /update request body — patch logs are text,
// and a batch bigger than this is an operator error, not a workload.
const maxPatchBytes = 8 << 20

// handleUpdate serves POST /update: the body is a text patch log (one
// "add u v w" / "del u v" / "set u v w" op per line, '#' comments), the
// response describes the overlay generation that now serves it. Shard
// servers reject with 421 (route updates through the router); servers
// without EnableUpdates reject with 409.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a text patch log (one \"add u v w\" / \"del u v\" / \"set u v w\" per line)")
		return
	}
	if s.part != nil {
		writeJSON(w, http.StatusMisdirectedRequest, map[string]any{
			"error": fmt.Sprintf("shard %d serves a frozen slice; route edge updates through the cluster's router", s.shardID),
			"shard": s.shardID,
		})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPatchBytes))
	if err != nil {
		code := http.StatusBadRequest
		if _, tooLarge := err.(*http.MaxBytesError); tooLarge {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, "reading patch log body: "+err.Error())
		return
	}
	ops, err := ParsePatchLog(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(ops) == 0 {
		httpError(w, http.StatusBadRequest, "empty update: the body held no ops")
		return
	}
	sn, err := s.applyOps(ops, true)
	if err != nil {
		code := http.StatusBadRequest
		if !s.updatesEnabled() {
			code = http.StatusConflict
		}
		httpError(w, code, err.Error())
		return
	}
	resp := map[string]any{
		"applied":    len(ops),
		"generation": sn.gen,
		"ident":      sn.ident,
	}
	if sn.ov != nil {
		resp["patch"] = sn.ov.Stat()
	}
	writeJSON(w, http.StatusOK, resp)
}

// updatesEnabled reports whether EnableUpdates has run (mu-guarded —
// the handlers use it only to pick a status code).
func (s *Server) updatesEnabled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baseGraph != nil
}

// handleCompact serves POST /compact: fold the outstanding patch log
// into a fresh frozen index and swap it in. Optional ?path= (or JSON
// body {"path":"..."}) names the file to persist the compacted index
// to; default is the serving snapshot's own file when it has one.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST /compact")
		return
	}
	path := r.URL.Query().Get("path")
	if path == "" {
		var body struct {
			Path string `json:"path"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		switch err := dec.Decode(&body); {
		case err == nil:
			path = body.Path
		case errors.Is(err, io.EOF): // empty body
		default:
			httpError(w, http.StatusBadRequest, "body must be empty or a JSON object {\"path\":\"...\"}: "+err.Error())
			return
		}
	}
	gen, err := s.Compact(path)
	if err != nil {
		code := http.StatusBadRequest
		if !s.updatesEnabled() {
			code = http.StatusConflict
		}
		httpError(w, code, err.Error())
		return
	}
	sn := s.Acquire()
	defer sn.Release()
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": gen,
		"path":       sn.path,
		"vertices":   sn.fx.NumVertices(),
		"labels":     sn.fx.TotalLabels(),
		"compressed": sn.fx.Compressed(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sn := s.Acquire()
	defer sn.Release()
	resp := map[string]any{"ok": true, "generation": sn.gen}
	if s.part != nil {
		resp["epoch"] = s.epoch
		resp["ident"] = sn.ident
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardQueryRequest is the POST /shardquery body: label-row fetches for
// the router's cross-shard hub joins, plus rank→original-id resolution
// for reporting witness hubs. Vertices asks for forward rows, Backward
// for backward rows (identical to forward on undirected shards — the
// halves coincide); a directed cross-shard query u→v fetches forward(u)
// from u's shard and backward(v) from v's. Any list may be empty.
type shardQueryRequest struct {
	Vertices []int `json:"vertices,omitempty"`
	Backward []int `json:"backward,omitempty"`
	Resolve  []int `json:"resolve,omitempty"`
}

// shardQueryResponse carries packed label runs keyed by vertex id. Each
// row is the vertex's entries array slice — little-endian uint64 words,
// hub (rank space) in the high 32 bits, float32 distance bits in the low
// 32 — base64-encoded so the bytes cross the wire exactly as they sit in
// the shard's (usually memory-mapped) index. Rows answers Vertices
// (forward runs), BackRows answers Backward. Directed echoes the served
// slice's directedness so the router can fail loudly on a cluster whose
// manifest and shard files disagree. Generation lets the router detect
// shard reloads and retire its answer cache.
type shardQueryResponse struct {
	Generation uint64            `json:"generation"`
	Epoch      uint64            `json:"epoch"`
	Ident      uint64            `json:"ident"`
	Vertices   int               `json:"n"`
	Directed   bool              `json:"directed,omitempty"`
	Rows       map[string]string `json:"rows,omitempty"`
	BackRows   map[string]string `json:"back_rows,omitempty"`
	Resolved   map[string]int    `json:"resolved,omitempty"`
}

// handleShardQuery serves the internal shard-to-router protocol: label
// rows for owned vertices (the router joins them locally) and rank
// resolution (any shard can resolve — the permutation is global and
// identical in every shard file).
func (s *Server) handleShardQuery(w http.ResponseWriter, r *http.Request) {
	if s.part == nil {
		// Not part of a cluster: the internal protocol (raw label-row
		// dumps, snapshot identities) stays off plain public servers,
		// and a router misconfigured against one fails loudly on every
		// path, not just the same-shard ones.
		httpError(w, http.StatusNotFound, "shardquery is only served by shard servers (started with a cluster manifest)")
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON {\"vertices\":[...],\"resolve\":[...]} body")
		return
	}
	var req shardQueryRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		code := http.StatusBadRequest
		if _, tooLarge := err.(*http.MaxBytesError); tooLarge {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, "body must be a JSON object {\"vertices\":[...],\"resolve\":[...]}: "+err.Error())
		return
	}
	sn := s.Acquire()
	defer sn.Release()
	n := sn.fx.NumVertices()
	resp := shardQueryResponse{Generation: sn.gen, Epoch: s.epoch, Ident: sn.ident, Vertices: n, Directed: sn.fx.Directed()}
	if len(req.Vertices) > 0 {
		resp.Rows = make(map[string]string, len(req.Vertices))
	}
	for _, v := range req.Vertices {
		if v < 0 || v >= n {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("vertex id %d out of range [0,%d)", v, n))
			return
		}
		if !s.owns(v) {
			s.misdirected(w, v)
			return
		}
		resp.Rows[strconv.Itoa(v)] = encodePackedRun(sn.fx.forwardRun(v))
	}
	if len(req.Backward) > 0 {
		resp.BackRows = make(map[string]string, len(req.Backward))
	}
	for _, v := range req.Backward {
		if v < 0 || v >= n {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("vertex id %d out of range [0,%d)", v, n))
			return
		}
		if !s.owns(v) {
			s.misdirected(w, v)
			return
		}
		resp.BackRows[strconv.Itoa(v)] = encodePackedRun(sn.fx.backwardRun(v))
	}
	if len(req.Resolve) > 0 {
		resp.Resolved = make(map[string]int, len(req.Resolve))
	}
	for _, rank := range req.Resolve {
		if rank < 0 || rank >= n {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("rank %d out of range [0,%d)", rank, n))
			return
		}
		resp.Resolved[strconv.Itoa(rank)] = sn.fx.perm[rank]
	}
	s.queries.Add(int64(len(req.Vertices) + len(req.Backward)))
	writeJSON(w, http.StatusOK, resp)
}

// rejectRichOnShard rejects a rich-workload request (/paths, /knn,
// /matrix) sent directly to a shard server: these workloads need the
// whole vertex space (path waypoints and knn/matrix targets land on
// arbitrary shards), so only plain servers and the router serve them.
// 421, like misdirected — the fix is the same: route through the
// router.
func (s *Server) rejectRichOnShard(w http.ResponseWriter) bool {
	if s.part == nil {
		return false
	}
	writeJSON(w, http.StatusMisdirectedRequest, map[string]any{
		"error": fmt.Sprintf("shard %d serves only its owned label rows; route rich query workloads through the cluster's router", s.shardID),
		"shard": s.shardID,
	})
	return true
}

func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /paths?u=&v=")
		return
	}
	if s.rejectRichOnShard(w) {
		return
	}
	sn := s.Acquire()
	defer sn.Release()
	n := sn.fx.NumVertices()
	u, err1 := strconv.Atoi(r.URL.Query().Get("u"))
	v, err2 := strconv.Atoi(r.URL.Query().Get("v"))
	if err1 != nil || err2 != nil {
		httpError(w, http.StatusBadRequest, "u and v must be integer vertex ids")
		return
	}
	if u < 0 || v < 0 || u >= n || v >= n {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("vertex ids must be in [0,%d)", n))
		return
	}
	s.queries.Add(1)
	d, path, ok, err := sn.eng.Path(u, v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := map[string]any{"u": u, "v": v, "reachable": ok}
	if ok {
		resp["dist"] = d
		resp["path"] = path
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /knn?u=&k=")
		return
	}
	if s.rejectRichOnShard(w) {
		return
	}
	sn := s.Acquire()
	defer sn.Release()
	n := sn.fx.NumVertices()
	u, err1 := strconv.Atoi(r.URL.Query().Get("u"))
	k, err2 := strconv.Atoi(r.URL.Query().Get("k"))
	if err1 != nil || err2 != nil {
		httpError(w, http.StatusBadRequest, "u and k must be integers")
		return
	}
	if u < 0 || u >= n {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("vertex ids must be in [0,%d)", n))
		return
	}
	if k < 1 || k > n {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("k must be in [1,%d]", n))
		return
	}
	s.queries.Add(1)
	neighbors := sn.eng.KNN(u, k)
	if neighbors == nil {
		neighbors = []Neighbor{} // an isolated source answers [], not null
	}
	writeJSON(w, http.StatusOK, map[string]any{"u": u, "k": k, "neighbors": neighbors})
}

// matrixRequest is the /matrix body: distances from every source to
// every target, streamed row by row.
type matrixRequest struct {
	Sources []int `json:"sources"`
	Targets []int `json:"targets"`
}

// decodeMatrixBody parses and bounds-checks a /matrix request body for
// an n-vertex index; shared by the single-process server and the
// Router. On failure it writes the error response and returns
// ok=false.
func decodeMatrixBody(w http.ResponseWriter, r *http.Request, n int) (matrixRequest, bool) {
	var req matrixRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		code := http.StatusBadRequest
		if _, tooLarge := err.(*http.MaxBytesError); tooLarge {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, "body must be a JSON object {\"sources\":[...],\"targets\":[...]}: "+err.Error())
		return req, false
	}
	if len(req.Sources) == 0 || len(req.Targets) == 0 {
		httpError(w, http.StatusBadRequest, "sources and targets must both be non-empty")
		return req, false
	}
	for _, id := range req.Sources {
		if id < 0 || id >= n {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("vertex ids must be in [0,%d)", n))
			return req, false
		}
	}
	for _, id := range req.Targets {
		if id < 0 || id >= n {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("vertex ids must be in [0,%d)", n))
			return req, false
		}
	}
	return req, true
}

// handleMatrix streams the sources × targets distance matrix as
// NDJSON: one header line {"targets":[...],"rows":N}, then one line
// {"u":u,"dists":[...]} per source (-1 marks unreachable pairs), each
// flushed as it is written. The response never materializes more than
// one row — a many-to-many query over a large index streams in
// constant memory at both ends.
func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON {\"sources\":[...],\"targets\":[...]} body")
		return
	}
	if s.rejectRichOnShard(w) {
		return
	}
	sn := s.Acquire()
	defer sn.Release()
	req, ok := decodeMatrixBody(w, r, sn.fx.NumVertices())
	if !ok {
		return
	}
	s.queries.Add(int64(len(req.Sources)) * int64(len(req.Targets)))
	streamMatrix(w, sn.eng, req)
}

// matrixRower streams matrix rows; FlatIndex answers from the frozen
// kernels, BatchEngine additionally corrects under a delta overlay.
type matrixRower interface {
	MatrixRows(sources, targets []int, emit func(u int, dists []float64) error) error
}

// streamMatrix writes the NDJSON matrix stream over fx; shared shape
// with the router's handler so both tiers speak one protocol.
func streamMatrix(w http.ResponseWriter, fx matrixRower, req matrixRequest) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.Encode(map[string]any{"targets": req.Targets, "rows": len(req.Sources)})
	if flusher != nil {
		flusher.Flush()
	}
	wire := make([]float64, len(req.Targets))
	fx.MatrixRows(req.Sources, req.Targets, func(u int, dists []float64) error {
		for i, d := range dists {
			if d == Infinity {
				wire[i] = -1 // JSON has no +Inf
			} else {
				wire[i] = d
			}
		}
		if err := enc.Encode(map[string]any{"u": u, "dists": wire}); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

// shardScanRequest is the router-facing /shardscan body: one source
// label run shipped to the shard, scanned against the shard's owned
// vertices — its slice of the inverted index when K > 0 (top-k
// candidates), its targets' backward runs when Targets is set (one
// matrix-row fragment). Exclude names a vertex the scan must omit (the
// source itself); it defaults to -1 (omit nothing).
type shardScanRequest struct {
	Run     string `json:"run"`
	K       int    `json:"k,omitempty"`
	Exclude int    `json:"exclude"`
	Targets []int  `json:"targets,omitempty"`
}

// shardScanResponse carries the scan results plus the same snapshot
// identity stamps as /shardquery, so the router's cache retirement
// sees scans too. Neighbor hubs are already resolved to original ids
// (the permutation is global and identical in every shard file).
// Dists uses -1 for unreachable, as every wire format here does.
type shardScanResponse struct {
	Generation uint64     `json:"generation"`
	Epoch      uint64     `json:"epoch"`
	Ident      uint64     `json:"ident"`
	Vertices   int        `json:"n"`
	Directed   bool       `json:"directed,omitempty"`
	Neighbors  []Neighbor `json:"neighbors,omitempty"`
	Dists      []float64  `json:"dists,omitempty"`
}

// handleShardScan serves the internal scan protocol behind the
// router's /knn and /matrix: the router fetches the source's forward
// run once, then ships it to the shards owning the candidates, and
// each shard scans only its own label rows.
func (s *Server) handleShardScan(w http.ResponseWriter, r *http.Request) {
	if s.part == nil {
		httpError(w, http.StatusNotFound, "shardscan is only served by shard servers (started with a cluster manifest)")
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON {\"run\":...,\"k\":...,\"targets\":[...]} body")
		return
	}
	req := shardScanRequest{Exclude: -1}
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		code := http.StatusBadRequest
		if _, tooLarge := err.(*http.MaxBytesError); tooLarge {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, "body must be a JSON object {\"run\":...,\"k\":...,\"targets\":[...]}: "+err.Error())
		return
	}
	sn := s.Acquire()
	defer sn.Release()
	n := sn.fx.NumVertices()
	run, err := decodePackedRun(req.Run, n)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.K < 0 || req.K > n {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("k must be in [0,%d]", n))
		return
	}
	resp := shardScanResponse{Generation: sn.gen, Epoch: s.epoch, Ident: sn.ident, Vertices: n, Directed: sn.fx.Directed()}
	if req.K > 0 {
		resp.Neighbors = sn.fx.KNNFromRun(run, req.K, req.Exclude)
	}
	if len(req.Targets) > 0 {
		for _, t := range req.Targets {
			if t < 0 || t >= n {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("vertex id %d out of range [0,%d)", t, n))
				return
			}
			if !s.owns(t) {
				s.misdirected(w, t)
				return
			}
		}
		resp.Dists = make([]float64, len(req.Targets))
		sn.fx.MatrixRowInto(label.NewQueryScratch(n), resp.Dists, run, req.Targets)
		for i, d := range resp.Dists {
			if d == Infinity {
				resp.Dists[i] = -1
			}
		}
	}
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// encodePackedRun serializes a packed label run as base64 of its
// little-endian bytes (label.PackedRunBytes).
func encodePackedRun(run []uint64) string {
	return base64.StdEncoding.EncodeToString(label.PackedRunBytes(run))
}

// decodePackedRun reverses encodePackedRun. The structural validation —
// whole entries, strictly ascending hubs, every hub < n — lives in
// label.ParsePackedRun (and is fuzzed there); the router runs it on rows
// received from shards before they reach the join kernels, whose scratch
// indexing trusts hub ids.
func decodePackedRun(enc string, n int) ([]uint64, error) {
	b, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		return nil, fmt.Errorf("chl: undecodable label row: %w", err)
	}
	return label.ParsePackedRun(b, n)
}

// handleMetrics exposes the server in Prometheus text format: the
// per-endpoint latency histograms plus index-shape and counter gauges.
// Deliberately not instrumented itself — scrapes shouldn't pollute the
// serving histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /metrics")
		return
	}
	st := s.Stats()
	w.Header().Set("Content-Type", promContentType)
	s.metrics.writeTo(w, "chl")
	promGauge(w, "chl_index_vertices", "Vertices covered by the served index.", float64(st.Vertices))
	promGauge(w, "chl_index_labels", "Labels in the served index.", float64(st.Labels))
	promGauge(w, "chl_index_memory_bytes", "Byte footprint of the served label arrays.", float64(st.MemoryBytes))
	promGauge(w, "chl_index_mapped", "1 when the index is served from a memory mapping.", boolGauge(st.Mapped))
	promGauge(w, "chl_index_directed", "1 when the served index holds directed (forward/backward) labels.", boolGauge(st.Directed))
	promGauge(w, "chl_index_compressed", "1 when the served index stores compressed label blocks (CHFX v4).", boolGauge(st.Compressed))
	promGauge(w, "chl_index_generation", "Current snapshot generation.", float64(st.Generation))
	promGauge(w, "chl_uptime_seconds", "Seconds since the server started.", st.UptimeSeconds)
	promCounter(w, "chl_queries_total", "Point-to-point queries answered.", st.Queries)
	promCounter(w, "chl_reloads_total", "Successful hot reloads.", st.Reloads)
	promCounter(w, "chl_updates_total", "Edge-update batches applied.", st.Updates)
	promCounter(w, "chl_compactions_total", "Patch-log compactions completed.", st.Compactions)
	if st.Patch != nil {
		promGauge(w, "chl_patch_epoch", "Epoch of the outstanding delta overlay.", float64(st.Patch.Epoch))
		promGauge(w, "chl_patch_ops", "Ops in the outstanding patch log.", float64(st.Patch.Ops))
		promGauge(w, "chl_patch_vertices", "Patch vertices in the outstanding overlay.", float64(st.Patch.Vertices))
	}
	if st.Cache != nil {
		promGauge(w, "chl_cache_entries", "Answers currently cached.", float64(st.Cache.Entries))
		promGauge(w, "chl_cache_capacity", "Answer cache capacity.", float64(st.Cache.Capacity))
		promCounter(w, "chl_cache_hits_total", "Answer cache hits.", st.Cache.Hits)
		promCounter(w, "chl_cache_misses_total", "Answer cache misses.", st.Cache.Misses)
	}
	if st.Shard != nil {
		promGauge(w, "chl_shard_id", "This server's shard id within its cluster.", float64(st.Shard.ID))
		promGauge(w, "chl_shard_count", "Shards in this server's cluster.", float64(st.Shard.Shards))
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

package chl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// maxBatchBytes bounds a /batch request body; past this the decoder never
// runs, so a hostile client cannot make the server buffer gigabytes.
const maxBatchBytes = 64 << 20

// Snapshot is one immutable generation of a served index: a flat index
// (usually mmap-backed), its batch engine, and a cache born with it.
// Snapshots are reference-counted: the Server holds one reference while
// the snapshot is current, and every in-flight query holds one from
// Acquire to Release. The underlying file mapping is unmapped by
// whichever Release drops the count to zero — after a hot swap the old
// generation therefore drains naturally, with no query ever touching
// unmapped memory and no reader ever blocking a reload.
type Snapshot struct {
	fx       *FlatIndex
	eng      *BatchEngine
	path     string
	gen      uint64
	loadedAt time.Time

	refs      atomic.Int64
	closeOnce sync.Once
}

// Index returns the snapshot's flat index.
func (sn *Snapshot) Index() *FlatIndex { return sn.fx }

// Engine returns the snapshot's batch engine (cache attached).
func (sn *Snapshot) Engine() *BatchEngine { return sn.eng }

// Generation returns the snapshot's monotonically increasing generation
// number (1 for the index the server started with).
func (sn *Snapshot) Generation() uint64 { return sn.gen }

// Path returns the file this snapshot was loaded from ("" when the
// server was built from an in-memory index).
func (sn *Snapshot) Path() string { return sn.path }

// Release returns a reference taken by Server.Acquire. The last release
// of a retired snapshot closes its file mapping.
func (sn *Snapshot) Release() {
	if sn.refs.Add(-1) == 0 {
		sn.closeOnce.Do(func() { sn.fx.Close() })
	}
}

// Server serves point-to-point distance queries from a hot-swappable
// snapshot of a flat index. The current snapshot is an atomic pointer:
// queries acquire it wait-free, and Reload publishes a fully validated
// replacement in one store — in-flight queries finish on the generation
// they started on, new queries see the new one, and the old mapping is
// unmapped only after its last query drains. A failed reload leaves the
// current snapshot serving untouched.
//
// Handler exposes the HTTP API (/dist, /batch, /stats, /reload,
// /healthz) documented in README.md; the query methods serve embedders
// directly.
type Server struct {
	cur       atomic.Pointer[Snapshot]
	mu        sync.Mutex // serializes Reload
	cacheSize int
	gen       atomic.Uint64
	queries   atomic.Int64
	reloads   atomic.Int64
	start     time.Time
}

// NewServer opens the flat index file at path (memory-mapped when
// possible — see OpenFlat) and returns a server for it. cacheSize bounds
// the per-snapshot answer cache; <= 0 disables caching.
func NewServer(path string, cacheSize int) (*Server, error) {
	fx, err := OpenFlat(path)
	if err != nil {
		return nil, err
	}
	s := newServer(cacheSize)
	s.install(fx, path)
	return s, nil
}

// NewServerFromFlat wraps an already loaded or freshly frozen index. The
// server takes ownership of fx; Reload still works and swaps to flat
// index files.
func NewServerFromFlat(fx *FlatIndex, cacheSize int) *Server {
	s := newServer(cacheSize)
	s.install(fx, "")
	return s
}

func newServer(cacheSize int) *Server {
	return &Server{cacheSize: cacheSize, start: time.Now()}
}

// install publishes fx as the next generation and retires the previous
// snapshot (dropping the server's reference; the mapping closes when the
// last in-flight query releases).
func (s *Server) install(fx *FlatIndex, path string) *Snapshot {
	eng := NewBatchEngineFlat(fx)
	eng.SetCache(NewCache(s.cacheSize))
	sn := &Snapshot{
		fx:       fx,
		eng:      eng,
		path:     path,
		gen:      s.gen.Add(1),
		loadedAt: time.Now(),
	}
	sn.refs.Store(1) // the server's own reference
	if old := s.cur.Swap(sn); old != nil {
		old.Release()
	}
	return sn
}

// Acquire returns the current snapshot with a reference held; the caller
// must Release it when done querying. Acquire is wait-free against
// concurrent reloads. It panics on a closed server — a loud failure
// beats the alternative, which would be handing out a generation whose
// mapping is already released.
func (s *Server) Acquire() *Snapshot {
	for {
		sn := s.cur.Load()
		if sn == nil {
			panic("chl: Server used after Close")
		}
		sn.refs.Add(1)
		if s.cur.Load() == sn {
			return sn
		}
		// A reload (or Close) won the race; this snapshot may be
		// draining. Put the reference back and take the new generation.
		sn.Release()
	}
}

// Reload loads the flat index file at path (the current snapshot's own
// file when path is "", e.g. after it was atomically replaced on disk)
// and hot-swaps it in, returning the new generation number. Queries in
// flight on the old snapshot finish untouched; its mapping is closed
// after the last one drains. On error the current snapshot keeps
// serving. Reloads are serialized; queries are never blocked.
func (s *Server) Reload(path string) (uint64, error) {
	sn, err := s.reload(path)
	if err != nil {
		return 0, err
	}
	return sn.gen, nil
}

// reload returns the installed snapshot so handleReload can describe
// exactly the generation it installed (not whatever a racing reload has
// since published). The caller holds no reference: only the snapshot's
// immutable metadata may be read, never its label arrays.
func (s *Server) reload(path string) (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if path == "" {
		cur := s.cur.Load()
		if cur == nil {
			return nil, fmt.Errorf("chl: Server used after Close")
		}
		path = cur.path
		if path == "" {
			return nil, fmt.Errorf("chl: reload needs a path: the server was built from an in-memory index")
		}
	}
	fx, err := OpenFlat(path)
	if err != nil {
		return nil, err
	}
	sn := s.install(fx, path)
	s.reloads.Add(1)
	return sn, nil
}

// Close retires the current snapshot (its mapping closes once in-flight
// queries drain). The server must not be queried afterwards: the
// current-snapshot pointer is cleared first, so a racing Acquire panics
// rather than touching unmapped memory.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn := s.cur.Swap(nil); sn != nil {
		sn.Release()
	}
	return nil
}

// Query answers one point-to-point query on the current snapshot,
// through its cache.
func (s *Server) Query(u, v int) float64 {
	d, _, _ := s.QueryHub(u, v)
	return d
}

// QueryHub answers one query with its witness hub on the current
// snapshot, through its cache.
func (s *Server) QueryHub(u, v int) (dist float64, hub int, ok bool) {
	sn := s.Acquire()
	defer sn.Release()
	s.queries.Add(1)
	return sn.eng.QueryHub(u, v)
}

// Batch answers a batch of queries on the current snapshot.
func (s *Server) Batch(pairs []QueryPair) []float64 {
	sn := s.Acquire()
	defer sn.Release()
	s.queries.Add(int64(len(pairs)))
	return sn.eng.Batch(pairs)
}

// ServerStats is the /stats response: the current snapshot's shape and
// provenance plus the server's cumulative counters.
type ServerStats struct {
	Vertices      int         `json:"vertices"`
	Labels        int64       `json:"labels"`
	MemoryBytes   int64       `json:"memory_bytes"`
	Mapped        bool        `json:"mapped"`
	Path          string      `json:"path,omitempty"`
	Generation    uint64      `json:"generation"`
	LoadedAt      time.Time   `json:"loaded_at"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	Queries       int64       `json:"queries_total"`
	Reloads       int64       `json:"reloads_total"`
	Cache         *CacheStats `json:"cache,omitempty"`
}

// Stats reports the server's current state.
func (s *Server) Stats() ServerStats {
	sn := s.Acquire()
	defer sn.Release()
	st := ServerStats{
		Vertices:      sn.fx.NumVertices(),
		Labels:        sn.fx.TotalLabels(),
		MemoryBytes:   sn.fx.TotalMemory(),
		Mapped:        sn.fx.Mapped(),
		Path:          sn.path,
		Generation:    sn.gen,
		LoadedAt:      sn.loadedAt,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Queries:       s.queries.Load(),
		Reloads:       s.reloads.Load(),
	}
	if c := sn.eng.Cache(); c != nil {
		cs := c.Stats()
		st.Cache = &cs
	}
	return st
}

// Handler returns the HTTP API: GET /dist, POST /batch, GET /stats,
// POST /reload, GET /healthz. Every error is a JSON body
// {"error": "..."} with a precise status code; see README.md for the
// full request/response schemas.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/dist", s.handleDist)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/reload", s.handleReload)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleDist(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /dist?u=&v=")
		return
	}
	sn := s.Acquire()
	defer sn.Release()
	n := sn.fx.NumVertices()
	u, err1 := strconv.Atoi(r.URL.Query().Get("u"))
	v, err2 := strconv.Atoi(r.URL.Query().Get("v"))
	if err1 != nil || err2 != nil {
		httpError(w, http.StatusBadRequest, "u and v must be integer vertex ids")
		return
	}
	if u < 0 || v < 0 || u >= n || v >= n {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("vertex ids must be in [0,%d)", n))
		return
	}
	s.queries.Add(1)
	d, hub, ok := sn.eng.QueryHub(u, v)
	resp := map[string]any{"u": u, "v": v, "reachable": ok}
	if ok {
		resp["dist"] = d
		resp["hub"] = hub
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON array of [u,v] pairs")
		return
	}
	sn := s.Acquire()
	defer sn.Release()
	n := sn.fx.NumVertices()
	// Decode into slices, not [2]int arrays: encoding/json silently
	// discards excess elements when filling a fixed-size array, and a
	// malformed pair must be a 400, not a quietly wrong answer.
	var raw [][]int
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBytes)
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		code := http.StatusBadRequest
		if _, tooLarge := err.(*http.MaxBytesError); tooLarge {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, "body must be a JSON array of [u,v] pairs: "+err.Error())
		return
	}
	pairs := make([]QueryPair, len(raw))
	for i, p := range raw {
		if len(p) != 2 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("pair %d has %d elements, want [u,v]", i, len(p)))
			return
		}
		if p[0] < 0 || p[1] < 0 || p[0] >= n || p[1] >= n {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("pair %d = [%d,%d] out of range [0,%d)", i, p[0], p[1], n))
			return
		}
		pairs[i] = QueryPair{U: p[0], V: p[1]}
	}
	s.queries.Add(int64(len(pairs)))
	dists := sn.eng.Batch(pairs)
	for i, d := range dists {
		if d == Infinity {
			dists[i] = -1 // JSON has no +Inf
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"dists": dists})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /stats")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST /reload")
		return
	}
	path := r.URL.Query().Get("path")
	if path == "" {
		// Optional JSON body {"path": "..."}; an empty body means
		// "reload my current file". A malformed body is a 400, not a
		// silent reload of the old file the operator didn't ask for.
		var body struct {
			Path string `json:"path"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		switch err := dec.Decode(&body); {
		case err == nil:
			path = body.Path
		case errors.Is(err, io.EOF): // empty body
		default:
			httpError(w, http.StatusBadRequest, "body must be empty or a JSON object {\"path\":\"...\"}: "+err.Error())
			return
		}
	}
	sn, err := s.reload(path)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Describe the snapshot this request installed; a racing reload may
	// already have superseded it, but the response must be coherent.
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": sn.gen,
		"path":       sn.path,
		"mapped":     sn.fx.Mapped(),
		"vertices":   sn.fx.NumVertices(),
		"labels":     sn.fx.TotalLabels(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sn := s.Acquire()
	defer sn.Release()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "generation": sn.gen})
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

package chl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// The rich query workloads (/paths, /knn, /matrix) routed through the
// cluster. Each one decomposes into the shard protocol the router
// already speaks — pair queries for path expansion, shipped-run scans
// (/shardscan) for top-k and matrix rows — so every number a workload
// returns is bit-identical to what /dist would answer for the same
// pair, on any topology. ARCHITECTURE.md ("Query workloads") has the
// full walkthrough.

// Path reconstructs the shortest-path witness chain between u and v
// through the cluster, exactly as Server.Path does on an unsharded
// index. Every segment query runs through the router's own single-query
// path — answer cache, singleflight, cross-shard row joins, and batched
// witness-rank resolution (resolveRankOn) — so each consecutive
// segment's distance is the same number /dist serves for that pair, bit
// for bit, and a hot path's segments are answered from cache.
func (r *Router) Path(u, v int) (dist float64, path []int, reachable bool, err error) {
	if u < 0 || u >= r.n {
		return 0, nil, false, &VertexRangeError{ID: u, N: r.n}
	}
	if v < 0 || v >= r.n {
		return 0, nil, false, &VertexRangeError{ID: v, N: r.n}
	}
	if err := r.ensurePatch(); err != nil {
		return 0, nil, false, err
	}
	// Under a delta overlay witness-hub expansion is unavailable (frozen
	// hubs need not lie on patched shortest paths), so the chain comes
	// from an exact predecessor Dijkstra on the patched graph — the same
	// fallback the engine tier takes (see BatchEngine.Path).
	if st := r.state.Load(); st.patch != nil {
		path, dist, err := st.patch.ov.ShortestPath(u, v)
		if err != nil {
			return 0, nil, false, err
		}
		if path == nil {
			return Infinity, nil, false, nil
		}
		return dist, path, true, nil
	}
	return expandPath(u, v, r.n, func(a, b int) (float64, int, bool, error) {
		return r.queryHub(a, b, true)
	})
}

// KNN returns up to k nearest targets from u through the cluster,
// sorted by (distance, vertex) with witness hubs, exactly as
// Server.KNN does on an unsharded index. The router fetches u's
// forward run from its owner once, ships it to every shard's
// /shardscan, and merges the per-shard top-k candidate lists — each
// shard scans only its own slice of the inverted index, so the global
// answer is the k best of at most shards×k candidates. Concurrent
// identical (u, k) requests collapse into one fan-out (singleflight,
// keyed apart from pair flights — see flightKind).
func (r *Router) KNN(u, k int) ([]Neighbor, error) {
	if u < 0 || u >= r.n {
		return nil, &VertexRangeError{ID: u, N: r.n}
	}
	if k < 1 || k > r.n {
		return nil, fmt.Errorf("chl: k must be in [1,%d], got %d", r.n, k)
	}
	if err := r.ensurePatch(); err != nil {
		return nil, err
	}
	r.queries.Add(1)
	st := r.state.Load()
	key := flightKeyFor(flightKNN, r.directed, u, k, false, st.patchEpoch())
	res := r.flights.do(key, func() { r.collapsed.Add(1) }, func() flightResult {
		if st.patch != nil {
			nbs, err := r.routePatchedKNN(st, u, k)
			return flightResult{neighbors: nbs, err: err}
		}
		nbs, err := r.routeKNN(u, k)
		return flightResult{neighbors: nbs, err: err}
	})
	return res.neighbors, res.err
}

// routePatchedKNN is KNN under a delta overlay: the shard-side inverted
// scans would rank candidates by frozen distances, so candidates come
// from an exact patched-graph row instead, and each winner is
// re-answered through the router's corrected pair path so distance,
// witness, and the cache deposit agree bit-for-bit with /dist — the
// same topKFromRow funnel the engine tier uses, which is what keeps the
// two tiers' /knn responses identical.
func (r *Router) routePatchedKNN(st *routerState, u, k int) ([]Neighbor, error) {
	var qerr error
	out := topKFromRow(mustOverlayRow(st.patch.ov, u), u, k, func(v int) (float64, int, bool) {
		d, h, ok, err := r.queryHub(u, v, true)
		if err != nil && qerr == nil {
			qerr = err
		}
		return d, h, ok
	})
	if qerr != nil {
		return nil, qerr
	}
	return out, nil
}

// scanObserver accumulates replica snapshot identities across a
// workload's fan-out, detecting the same race Batch does: one replica
// answering under two identities means a reload landed mid-request, so
// the answers are not attributable to a single snapshot and must not
// seed the cache.
type scanObserver struct {
	mu       sync.Mutex
	obs      map[repRef]genObs
	fails    []*ShardError
	conflict bool
}

func newScanObserver() *scanObserver {
	return &scanObserver{obs: map[repRef]genObs{}}
}

func (so *scanObserver) observe(k repRef, o genObs, serr *ShardError) {
	so.mu.Lock()
	defer so.mu.Unlock()
	if serr != nil {
		so.fails = append(so.fails, serr)
		return
	}
	if prev, seen := so.obs[k]; seen && prev != o {
		so.conflict = true
	}
	so.obs[k] = o
}

// err returns the accumulated fan-out failure, if any, as a
// ClusterError with deterministically ordered shards.
func (so *scanObserver) err() error {
	if len(so.fails) == 0 {
		return nil
	}
	sort.Slice(so.fails, func(i, j int) bool { return so.fails[i].Shard < so.fails[j].Shard })
	return &ClusterError{Failed: so.fails}
}

// shardScan runs one validated /shardscan round trip against shard sid
// (with the usual failover and hedging) and folds the replica's
// snapshot identity into so.
func (r *Router) shardScan(sid int, req shardScanRequest, so *scanObserver) *shardScanResponse {
	resp, rep, serr := postJSON[shardScanResponse](r, sid, "/shardscan", req)
	if serr == nil && resp.Generation == 0 {
		serr = r.terminalErr(rep, errNotShardBackend)
	}
	if serr == nil && resp.Vertices != r.n {
		serr = r.terminalErr(rep, fmt.Errorf("shard serves %d vertices but the manifest says %d — mismatched index files?", resp.Vertices, r.n))
	}
	if serr == nil {
		serr = r.checkDirected(rep, resp.Directed)
	}
	if serr != nil {
		so.observe(repRef{}, genObs{}, serr)
		return nil
	}
	rep.lastGen.Store(resp.Generation)
	so.observe(repRef{sid, rep.id}, genObs{epoch: resp.Epoch, gen: resp.Generation, hash: resp.Ident}, nil)
	return resp
}

// routeKNN is the leader's half of KNN: fetch the source run, broadcast
// the scan, merge, and seed the pair cache. Each merged neighbor is a
// complete (distance, witness) pair answer — the same triple QueryHub
// would compute — so it enters the pair cache under the normal pair
// key; k itself never reaches the cache keyspace (see Cache).
func (r *Router) routeKNN(u, k int) ([]Neighbor, error) {
	st := r.state.Load()
	so := newScanObserver()
	su := r.part.Owner(u)
	rowsF, _, rep, o, serr := r.fetchRows(su, []int{u}, nil)
	if serr != nil {
		return nil, &ClusterError{Failed: []*ShardError{serr}}
	}
	so.observe(repRef{su, rep.id}, o, nil)
	req := shardScanRequest{Run: encodePackedRun(rowsF[u]), K: k, Exclude: u}
	merged := make([]Neighbor, 0, k)
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for sid := range r.shards {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			resp := r.shardScan(sid, req, so)
			if resp == nil {
				return
			}
			mu.Lock()
			merged = append(merged, resp.Neighbors...)
			mu.Unlock()
		}(sid)
	}
	wg.Wait()
	if err := so.err(); err != nil {
		return nil, err
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Dist != merged[j].Dist {
			return merged[i].Dist < merged[j].Dist
		}
		return merged[i].V < merged[j].V
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	if !so.conflict && r.cacheValid(st, so.obs) {
		for _, nb := range merged {
			st.cache.Put(u, nb.V, Answer{Dist: nb.Dist, Hub: nb.Hub, Reachable: true})
		}
	} else if so.conflict {
		r.noteGenerations(so.obs)
	}
	return merged, nil
}

// Matrix streams the sources × targets distance matrix through the
// cluster: emit is called once per source, in order, with a row of
// len(targets) distances (Infinity for unreachable), exactly as
// FlatIndex.MatrixRows does on an unsharded index. The router fetches
// every source's forward run up front — batched, one /shardquery per
// owning shard — then, per source, fans the run out to the shards
// owning targets (/shardscan with the target fragment each shard owns)
// and assembles the row in target order. The row slice is reused
// between emits: the matrix itself is never materialized at the
// router, which is what keeps a many-to-many query's memory at one
// row.
//
// Matrix answers are deliberately not cached: a sources×targets sweep
// would evict the cache's working set with hub-less entries /batch can
// re-derive anyway. Observed snapshot identities still feed the
// cache-retirement machinery (noteGenerations).
func (r *Router) Matrix(sources, targets []int, emit func(u int, dists []float64) error) error {
	for _, id := range sources {
		if id < 0 || id >= r.n {
			return &VertexRangeError{ID: id, N: r.n}
		}
	}
	for _, id := range targets {
		if id < 0 || id >= r.n {
			return &VertexRangeError{ID: id, N: r.n}
		}
	}
	if err := r.ensurePatch(); err != nil {
		return err
	}
	r.queries.Add(int64(len(sources)) * int64(len(targets)))

	// Under a delta overlay every cell needs the seeded correction, so
	// rows come from exact patched single-source Dijkstras projected
	// onto the target set (the engine tier's exact policy — see
	// BatchEngine.MatrixRows), preserving the one-row streaming
	// discipline; the shard-scan fan-out below would answer from frozen
	// labels.
	if st := r.state.Load(); st.patch != nil {
		row := make([]float64, len(targets))
		for _, u := range sources {
			full := mustOverlayRow(st.patch.ov, u)
			for j, t := range targets {
				row[j] = full[t]
			}
			if err := emit(u, row); err != nil {
				return err
			}
		}
		return nil
	}
	so := newScanObserver()

	// Source-run prefetch, one /shardquery per owning shard, concurrent.
	needF := map[int][]int{} // shard id -> deduplicated owned sources
	seen := map[int]struct{}{}
	for _, u := range sources {
		if _, dup := seen[u]; dup {
			continue
		}
		seen[u] = struct{}{}
		su := r.part.Owner(u)
		needF[su] = append(needF[su], u)
	}
	rowsF := make(map[int][]uint64, len(seen))
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for sid, vs := range needF {
		wg.Add(1)
		go func(sid int, vs []int) {
			defer wg.Done()
			sort.Ints(vs)
			got, _, rep, o, serr := r.fetchRows(sid, vs, nil)
			if serr != nil {
				so.observe(repRef{}, genObs{}, serr)
				return
			}
			mu.Lock()
			for v, run := range got {
				rowsF[v] = run
			}
			mu.Unlock()
			so.observe(repRef{sid, rep.id}, o, nil)
		}(sid, vs)
	}
	wg.Wait()
	if err := so.err(); err != nil {
		return err
	}

	// Group targets by owning shard once; pos remembers each target's
	// column so rows assemble in request order regardless of which shard
	// answered first.
	tgtPos := map[int][]int{} // shard id -> positions into targets
	for j, t := range targets {
		sid := r.part.Owner(t)
		tgtPos[sid] = append(tgtPos[sid], j)
	}
	tgtIDs := make(map[int][]int, len(tgtPos)) // shard id -> target ids, same order as tgtPos
	for sid, pos := range tgtPos {
		ids := make([]int, len(pos))
		for i, j := range pos {
			ids[i] = targets[j]
		}
		tgtIDs[sid] = ids
	}

	row := make([]float64, len(targets))
	for _, u := range sources {
		req := shardScanRequest{Run: encodePackedRun(rowsF[u]), Exclude: -1}
		var rwg sync.WaitGroup
		for sid := range tgtPos {
			rwg.Add(1)
			go func(sid int) {
				defer rwg.Done()
				sreq := req
				sreq.Targets = tgtIDs[sid]
				resp := r.shardScan(sid, sreq, so)
				if resp == nil {
					return
				}
				pos := tgtPos[sid]
				if len(resp.Dists) != len(pos) {
					so.observe(repRef{}, genObs{}, &ShardError{Shard: sid, Replica: -1, Addr: r.shards[sid].addrList(),
						Err: fmt.Errorf("scan of %d targets answered with %d distances", len(pos), len(resp.Dists))})
					return
				}
				mu.Lock()
				for i, j := range pos {
					d := resp.Dists[i]
					if d == -1 {
						d = Infinity
					}
					row[j] = d
				}
				mu.Unlock()
			}(sid)
		}
		rwg.Wait()
		if err := so.err(); err != nil {
			return err
		}
		if err := emit(u, row); err != nil {
			return err
		}
	}
	r.noteGenerations(so.obs)
	return nil
}

// --- HTTP handlers ---

func (r *Router) handlePaths(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /paths?u=&v=")
		return
	}
	u, err1 := strconv.Atoi(req.URL.Query().Get("u"))
	v, err2 := strconv.Atoi(req.URL.Query().Get("v"))
	if err1 != nil || err2 != nil {
		httpError(w, http.StatusBadRequest, "u and v must be integer vertex ids")
		return
	}
	d, path, ok, err := r.Path(u, v)
	if err != nil {
		routeError(w, err)
		return
	}
	resp := map[string]any{"u": u, "v": v, "reachable": ok}
	if ok {
		resp["dist"] = d
		resp["path"] = path
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *Router) handleKNN(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET /knn?u=&k=")
		return
	}
	u, err1 := strconv.Atoi(req.URL.Query().Get("u"))
	k, err2 := strconv.Atoi(req.URL.Query().Get("k"))
	if err1 != nil || err2 != nil {
		httpError(w, http.StatusBadRequest, "u and k must be integers")
		return
	}
	if k < 1 || k > r.n {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("k must be in [1,%d]", r.n))
		return
	}
	neighbors, err := r.KNN(u, k)
	if err != nil {
		routeError(w, err)
		return
	}
	if neighbors == nil {
		neighbors = []Neighbor{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"u": u, "k": k, "neighbors": neighbors})
}

// handleMatrix streams the matrix as NDJSON in the exact shape the
// single-process Server serves (see streamMatrix): a header line, then
// one flushed line per source row, -1 for unreachable. The header is
// written lazily on the first row so a prefetch failure still gets a
// proper error status; a shard failure after streaming has begun
// terminates the stream with an {"error": ...} line instead — the
// status line is long gone.
func (r *Router) handleMatrix(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON {\"sources\":[...],\"targets\":[...]} body")
		return
	}
	mreq, ok := decodeMatrixBody(w, req, r.n)
	if !ok {
		return
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	headerWritten := false
	wire := make([]float64, len(mreq.Targets))
	err := r.Matrix(mreq.Sources, mreq.Targets, func(u int, dists []float64) error {
		if !headerWritten {
			headerWritten = true
			w.Header().Set("Content-Type", "application/x-ndjson")
			enc.Encode(map[string]any{"targets": mreq.Targets, "rows": len(mreq.Sources)})
			if flusher != nil {
				flusher.Flush()
			}
		}
		for i, d := range dists {
			if d == Infinity {
				wire[i] = -1 // JSON has no +Inf
			} else {
				wire[i] = d
			}
		}
		if err := enc.Encode(map[string]any{"u": u, "dists": wire}); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		if !headerWritten {
			routeError(w, err)
			return
		}
		enc.Encode(map[string]any{"error": err.Error()})
	}
}

package chl_test

import (
	"fmt"

	chl "repro"
)

// The canonical quickstart: build a labeling, answer a query.
func ExampleBuild() {
	g := chl.GenerateRoadGrid(8, 8, 1)
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("d(0,63) = %g\n", ix.Query(0, 63))
	// Output: d(0,63) = 38
}

// Distributed construction partitions labels across simulated cluster
// nodes; the index still answers exactly.
func ExampleBuild_distributed() {
	g := chl.GenerateScaleFree(256, 3, 1)
	ord := chl.RankByDegree(g)
	shared, _ := chl.Build(g, chl.Options{Algorithm: chl.AlgoSeqPLL, Order: ord})
	hybrid, _ := chl.Build(g, chl.Options{Algorithm: chl.AlgoHybrid, Order: ord, Nodes: 4})
	fmt.Println("same ALS:", shared.Stats().ALS == hybrid.Stats().ALS)
	fmt.Println("same answer:", shared.Query(3, 250) == hybrid.Query(3, 250))
	// Output:
	// same ALS: true
	// same answer: true
}

// Path retrieval reconstructs the actual shortest path, not just its
// length.
func ExampleBuildWithPaths() {
	g := chl.GenerateRoadGrid(4, 4, 1) // 4×4 grid, vertex ids row-major
	px, err := chl.BuildWithPaths(g, chl.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	path, dist, ok := px.Path(0, 15)
	fmt.Println("reachable:", ok, "hops:", len(path)-1, "length:", dist)
	fmt.Println("starts at", path[0], "ends at", path[len(path)-1])
	// Output:
	// reachable: true hops: 6 length: 20
	// starts at 0 ends at 15
}

// Query engines deploy a built index across simulated nodes under the
// paper's three modes.
func ExampleNewQueryEngine() {
	g := chl.GenerateScaleFree(200, 3, 2)
	ix, _ := chl.Build(g, chl.Options{Algorithm: chl.AlgoDPLaNT, Nodes: 6})
	qe, err := chl.NewQueryEngine(ix, chl.ModeQDOL, 6)
	if err != nil {
		panic(err)
	}
	d, _ := qe.Query(0, 199)
	fmt.Println("matches local query:", d == ix.Query(0, 199))
	// Output: matches local query: true
}

package chl_test

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"

	chl "repro"
)

// The canonical quickstart: build a labeling, answer a query.
func ExampleBuild() {
	g := chl.GenerateRoadGrid(8, 8, 1)
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("d(0,63) = %g\n", ix.Query(0, 63))
	// Output: d(0,63) = 38
}

// Distributed construction partitions labels across simulated cluster
// nodes; the index still answers exactly.
func ExampleBuild_distributed() {
	g := chl.GenerateScaleFree(256, 3, 1)
	ord := chl.RankByDegree(g)
	shared, _ := chl.Build(g, chl.Options{Algorithm: chl.AlgoSeqPLL, Order: ord})
	hybrid, _ := chl.Build(g, chl.Options{Algorithm: chl.AlgoHybrid, Order: ord, Nodes: 4})
	fmt.Println("same ALS:", shared.Stats().ALS == hybrid.Stats().ALS)
	fmt.Println("same answer:", shared.Query(3, 250) == hybrid.Query(3, 250))
	// Output:
	// same ALS: true
	// same answer: true
}

// Path retrieval reconstructs the actual shortest path, not just its
// length.
func ExampleBuildWithPaths() {
	g := chl.GenerateRoadGrid(4, 4, 1) // 4×4 grid, vertex ids row-major
	px, err := chl.BuildWithPaths(g, chl.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	path, dist, ok := px.Path(0, 15)
	fmt.Println("reachable:", ok, "hops:", len(path)-1, "length:", dist)
	fmt.Println("starts at", path[0], "ends at", path[len(path)-1])
	// Output:
	// reachable: true hops: 6 length: 20
	// starts at 0 ends at 15
}

// Freezing packs the labeling into the flat store; queries answer
// identically, from contiguous memory.
func ExampleIndex_Freeze() {
	g := chl.GenerateRoadGrid(8, 8, 1)
	ix, _ := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: 1})
	fx, err := ix.Freeze()
	if err != nil {
		panic(err)
	}
	fmt.Println("same answer:", fx.Query(0, 63) == ix.Query(0, 63))
	fmt.Println("labels:", fx.TotalLabels() == ix.Stats().TotalLabels)
	// Output:
	// same answer: true
	// labels: true
}

// The serve-many flow: freeze once, save, reload in a serving process, and
// answer batches in parallel.
func ExampleNewBatchEngineFlat() {
	g := chl.GenerateScaleFree(300, 3, 1)
	ix, _ := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: 1})
	fx, _ := ix.Freeze()

	var wire bytes.Buffer
	if err := fx.Save(&wire); err != nil { // once, at build time
		panic(err)
	}
	loaded, err := chl.LoadFlat(&wire) // every serving process
	if err != nil {
		panic(err)
	}
	eng := chl.NewBatchEngineFlat(loaded)
	dists := eng.Batch([]chl.QueryPair{{U: 0, V: 299}, {U: 5, V: 250}})
	fmt.Println("batch size:", len(dists))
	fmt.Println("matches build:", dists[0] == ix.Query(0, 299) && dists[1] == ix.Query(5, 250))
	// Output:
	// batch size: 2
	// matches build: true
}

// The full production flow: Freeze the build, Save it to disk, load it
// back with the serving loader (LoadFlat reads any version; OpenFlat
// memory-maps when the platform allows), and serve batches in parallel
// through NewBatchEngineFlat.
func ExampleIndex_Freeze_serving() {
	g := chl.GenerateRoadGrid(10, 10, 1)
	ix, _ := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: 1})
	fx, _ := ix.Freeze()

	dir, _ := os.MkdirTemp("", "chl-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "grid.flat")
	if err := fx.SaveFile(path); err != nil { // once, at build time
		panic(err)
	}
	served, err := chl.OpenFlat(path) // every serving process, zero-copy when mappable
	if err != nil {
		panic(err)
	}
	defer served.Close()
	eng := chl.NewBatchEngineFlat(served)
	dists := eng.Batch([]chl.QueryPair{{U: 0, V: 99}, {U: 9, V: 90}})
	fmt.Println("matches build:", dists[0] == ix.Query(0, 99) && dists[1] == ix.Query(9, 90))
	// Output: matches build: true
}

// A Cache fronts an engine with a sharded, bounded LRU of full answers;
// hit/miss counters feed the /stats endpoint.
func ExampleNewCache() {
	g := chl.GenerateRoadGrid(8, 8, 1)
	ix, _ := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: 1})
	eng, _ := chl.NewBatchEngine(ix)
	eng.SetCache(chl.NewCache(1024))

	first := eng.Query(0, 63)  // miss: join over the label arrays
	second := eng.Query(63, 0) // hit: pairs are unordered
	st := eng.Cache().Stats()
	fmt.Println("same answer:", first == second)
	fmt.Printf("hits=%d misses=%d\n", st.Hits, st.Misses)
	// Output:
	// same answer: true
	// hits=1 misses=1
}

// A Server hot-swaps index generations with zero dropped queries: each
// Reload atomically publishes a freshly validated snapshot (with its own
// cache, so no stale answers), drains the old one, then unmaps it.
func ExampleServer() {
	dir, _ := os.MkdirTemp("", "chl-example")
	defer os.RemoveAll(dir)
	build := func(seed int64, name string) string {
		g := chl.GenerateRoadGrid(8, 8, seed) // different seed, different edge weights
		ix, _ := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: 1})
		fx, _ := ix.Freeze()
		path := filepath.Join(dir, name)
		if err := fx.SaveFile(path); err != nil {
			panic(err)
		}
		return path
	}
	s, err := chl.NewServer(build(1, "v1.flat"), 1024)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	before := s.Query(0, 63)
	if _, err := s.Reload(build(2, "v2.flat")); err != nil { // hot swap
		panic(err)
	}
	fmt.Println("generation:", s.Stats().Generation)
	fmt.Println("new weights served:", s.Query(0, 63) != before)
	// Output:
	// generation: 2
	// new weights served: true
}

// The sharded serving tier: SaveShards slices a flat index into
// per-shard files plus a cluster manifest, each shard serves its slice
// through an ordinary Server, and a Router fans queries out —
// whole-query forwarding when one shard owns both endpoints, a hub join
// over two fetched label rows when two do. Answers are bit-identical to
// the single-process index.
func ExampleRouter() {
	g := chl.GenerateRoadGrid(8, 8, 1)
	ix, _ := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Seed: 1})
	fx, _ := ix.Freeze()

	dir, _ := os.MkdirTemp("", "chl-cluster")
	defer os.RemoveAll(dir)
	m, err := fx.SaveShards(dir, 3, 64, 1) // 3 shards, 64 ring points each
	if err != nil {
		panic(err)
	}
	part, _ := m.Partition()

	addrs := make([]string, m.Shards)
	for i := range addrs { // one serving process per shard, here in-process
		path, _ := chl.ShardFilePath(filepath.Join(dir, "cluster.json"), m, i)
		s, err := chl.NewServer(path, 1024)
		if err != nil {
			panic(err)
		}
		defer s.Close()
		if err := s.SetShard(i, part); err != nil {
			panic(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		addrs[i] = ts.URL
	}

	r, err := chl.NewRouter(chl.RouterConfig{Manifest: m, Addrs: addrs, CacheSize: 1024})
	if err != nil {
		panic(err)
	}
	d, _ := r.Query(0, 63)
	fmt.Printf("d(0,63) = %g\n", d)
	fmt.Println("matches single process:", d == fx.Query(0, 63))
	// Output:
	// d(0,63) = 38
	// matches single process: true
}

// Query engines deploy a built index across simulated nodes under the
// paper's three modes.
func ExampleNewQueryEngine() {
	g := chl.GenerateScaleFree(200, 3, 2)
	ix, _ := chl.Build(g, chl.Options{Algorithm: chl.AlgoDPLaNT, Nodes: 6})
	qe, err := chl.NewQueryEngine(ix, chl.ModeQDOL, 6)
	if err != nil {
		panic(err)
	}
	d, _ := qe.Query(0, 199)
	fmt.Println("matches local query:", d == ix.Query(0, 199))
	// Output: matches local query: true
}

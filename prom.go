package chl

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// Prometheus-format observability for the serving tier. The exposition is
// hand-rolled (the repository takes no dependencies): a fixed-bucket
// latency histogram per endpoint plus request/error counters, written in
// the text format any Prometheus scraper ingests. Server.Handler and
// Router.Handler mount it at GET /metrics alongside the JSON /stats —
// /stats is for humans and tests, /metrics for dashboards and alerting.

// promContentType is the Prometheus text exposition content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// latencyBuckets are the histogram upper bounds in seconds: 100µs to 10s,
// roughly ×2.5 per step — wide enough to separate a cache hit from a
// cross-shard fan-out from a stuck shard.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// latencyHist is a lock-free fixed-bucket histogram of request durations.
type latencyHist struct {
	buckets  [len(latencyBuckets)]atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
}

// observe records one duration.
func (h *latencyHist) observe(d time.Duration) {
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// endpointMetrics is the per-endpoint instrumentation record.
type endpointMetrics struct {
	name     string
	hist     latencyHist
	requests atomic.Int64
	errors   atomic.Int64 // responses with status >= 400
}

// httpMetrics instruments a fixed set of endpoints, declared up front so
// the hot path is an index into an array, not a map under a lock. Time
// flows through the injected Clock so tests can step a FakeClock and
// assert exact bucket placement.
type httpMetrics struct {
	clock     Clock
	endpoints []*endpointMetrics
}

func newHTTPMetrics(clock Clock, names ...string) *httpMetrics {
	m := &httpMetrics{clock: clock}
	for _, n := range names {
		m.endpoints = append(m.endpoints, &endpointMetrics{name: n})
	}
	sort.Slice(m.endpoints, func(i, j int) bool { return m.endpoints[i].name < m.endpoints[j].name })
	return m
}

func (m *httpMetrics) endpoint(name string) *endpointMetrics {
	for _, e := range m.endpoints {
		if e.name == name {
			return e
		}
	}
	return nil
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it supports streaming —
// embedding only promotes the ResponseWriter methods, so without this
// an instrumented streaming endpoint (/matrix flushes per row) would
// silently lose its flushes.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// wrap instruments a handler: duration into the endpoint's histogram,
// request and error counters alongside.
func (m *httpMetrics) wrap(name string, h http.HandlerFunc) http.HandlerFunc {
	e := m.endpoint(name)
	if e == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := m.clock.Now()
		h(rec, r)
		e.hist.observe(m.clock.Now().Sub(start))
		e.requests.Add(1)
		if rec.status >= 400 {
			e.errors.Add(1)
		}
	}
}

// writeTo emits the per-endpoint histograms and counters in Prometheus
// text format. prefix namespaces the metric family (e.g. "chl" or
// "chl_router") so a shard server and a router scraped by the same
// Prometheus stay distinguishable.
func (m *httpMetrics) writeTo(w io.Writer, prefix string) {
	fmt.Fprintf(w, "# HELP %s_http_request_duration_seconds HTTP request latency by endpoint.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_http_request_duration_seconds histogram\n", prefix)
	for _, e := range m.endpoints {
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += e.hist.buckets[i].Load()
			fmt.Fprintf(w, "%s_http_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				prefix, e.name, formatBucket(ub), cum)
		}
		count := e.hist.count.Load()
		fmt.Fprintf(w, "%s_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", prefix, e.name, count)
		fmt.Fprintf(w, "%s_http_request_duration_seconds_sum{endpoint=%q} %g\n",
			prefix, e.name, float64(e.hist.sumNanos.Load())/float64(time.Second))
		fmt.Fprintf(w, "%s_http_request_duration_seconds_count{endpoint=%q} %d\n", prefix, e.name, count)
	}
	fmt.Fprintf(w, "# HELP %s_http_requests_total HTTP requests served, by endpoint.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_http_requests_total counter\n", prefix)
	for _, e := range m.endpoints {
		fmt.Fprintf(w, "%s_http_requests_total{endpoint=%q} %d\n", prefix, e.name, e.requests.Load())
	}
	fmt.Fprintf(w, "# HELP %s_http_request_errors_total HTTP responses with status >= 400, by endpoint.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_http_request_errors_total counter\n", prefix)
	for _, e := range m.endpoints {
		fmt.Fprintf(w, "%s_http_request_errors_total{endpoint=%q} %d\n", prefix, e.name, e.errors.Load())
	}
}

// formatBucket renders a bucket bound the way Prometheus conventionally
// prints it (no scientific notation for these magnitudes).
func formatBucket(ub float64) string {
	return fmt.Sprintf("%g", ub)
}

// promGauge writes one unlabelled gauge with HELP/TYPE preamble.
func promGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// promCounter writes one unlabelled counter with HELP/TYPE preamble.
func promCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

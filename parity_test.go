package chl_test

// The cross-stack parity harness: every query workload (/dist, /paths,
// /knn, /matrix), over every storage format (fixed-width packed, CHFX
// v4 compressed), both directednesses, on every serving topology
// (single process, sharded 3×1, replicated 2×2), answered over HTTP and
// checked bit-for-bit against a naive in-memory Dijkstra oracle. Labels
// carry float32-exact integer weights and every tier sums legs in
// float64, so the assertions are ==, not approximately-equal: one bit
// of drift anywhere in the stack fails the matrix.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	chl "repro"
	"repro/internal/sssp"
)

// parityOracle answers by single-source Dijkstra over the original
// graph, memoized per source.
type parityOracle struct {
	g    *chl.Graph
	rows map[int][]float64
}

func newParityOracle(g *chl.Graph) *parityOracle {
	return &parityOracle{g: g, rows: map[int][]float64{}}
}

func (o *parityOracle) from(u int) []float64 {
	if d, ok := o.rows[u]; ok {
		return d
	}
	d := sssp.Dijkstra(o.g, u)
	o.rows[u] = d
	return d
}

// parityStack is one serving topology under test, reduced to the only
// thing the workload checks need: the base URL of its public HTTP
// surface.
type parityStack struct {
	name string
	base string
}

// parityStacks starts all three topologies over fx: the single-process
// server, a 3-shard cluster, and a 2×2 replicated cluster. Listeners
// and serving processes are torn down by t.Cleanup. A non-nil g enables
// dynamic updates on every stack (EnableUpdates on the flat server,
// RouterConfig.BaseGraph on the clusters) so the patched parity pass
// can POST /update to each.
func parityStacks(t *testing.T, fx *chl.FlatIndex, g *chl.Graph) []parityStack {
	t.Helper()
	flat := chl.NewServerFromFlat(fx, 1<<12)
	if g != nil {
		if err := flat.EnableUpdates(g, ""); err != nil {
			t.Fatal(err)
		}
	}
	flatTS := httptest.NewServer(flat.Handler())
	t.Cleanup(func() { flatTS.Close(); flat.Close() })

	tweak := func(cfg *chl.RouterConfig) { cfg.BaseGraph = g }
	sharded := newTestCluster(t, fx, clusterSpec{shards: 3, cacheSize: 1 << 12, tweak: tweak})
	shardedTS := httptest.NewServer(sharded.router.Handler())
	t.Cleanup(func() { shardedTS.Close(); sharded.close() })

	replicated := newTestCluster(t, fx, clusterSpec{shards: 2, replicas: 2, cacheSize: 1 << 12, tweak: tweak})
	replicatedTS := httptest.NewServer(replicated.router.Handler())
	t.Cleanup(func() { replicatedTS.Close(); replicated.close() })

	return []parityStack{
		{"flat", flatTS.URL},
		{"sharded", shardedTS.URL},
		{"replicated", replicatedTS.URL},
	}
}

// parityPatchOps derives a deterministic patch batch from g exercising
// all three op kinds: deletions and reweights of existing edges spread
// across the vertex range, insertions of absent ones. Weights stay
// small integers so every patched distance remains float32-exact and
// the parity assertions stay ==.
func parityPatchOps(g *chl.Graph) []chl.EdgeOp {
	n := g.NumVertices()
	var dels, sets []chl.EdgeOp
	for step := 0; step < n && len(dels)+len(sets) < 6; step++ {
		u := (step * 61) % n
		heads, _ := g.Neighbors(u)
		for _, h := range heads {
			v := int(h)
			if u == v || (!g.Directed() && v < u) {
				continue
			}
			if len(dels) < 3 {
				dels = append(dels, chl.EdgeOp{Kind: chl.EdgeOpDel, U: u, V: v})
			} else if len(sets) < 3 {
				sets = append(sets, chl.EdgeOp{Kind: chl.EdgeOpSet, U: u, V: v, W: float64(2 + step%7)})
			}
			break // at most one op per source vertex
		}
	}
	taken := map[[2]int]bool{}
	for _, op := range dels {
		taken[[2]int{op.U, op.V}] = true
	}
	for _, op := range sets {
		taken[[2]int{op.U, op.V}] = true
	}
	var adds []chl.EdgeOp
	for i := 1; len(adds) < 3 && i < 4*n; i++ {
		u, v := (i*53)%n, (i*97+29)%n
		if u == v || taken[[2]int{u, v}] || taken[[2]int{v, u}] {
			continue
		}
		if _, has := g.HasEdge(u, v); has {
			continue
		}
		if !g.Directed() {
			if _, has := g.HasEdge(v, u); has {
				continue
			}
		}
		taken[[2]int{u, v}] = true
		taken[[2]int{v, u}] = true
		adds = append(adds, chl.EdgeOp{Kind: chl.EdgeOpAdd, U: u, V: v, W: float64(1 + i%6)})
	}
	ops := append(append(dels, sets...), adds...)
	if len(ops) == 0 {
		panic("parityPatchOps: fixture graph yielded no ops")
	}
	return ops
}

// postUpdate POSTs ops as a text patch log to the stack's /update.
func postUpdate(t *testing.T, base string, ops []chl.EdgeOp) {
	t.Helper()
	resp, err := http.Post(base+"/update", "text/plain", bytes.NewReader(chl.FormatPatchLog(ops)))
	if err != nil {
		t.Fatalf("POST /update: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		t.Fatalf("POST /update: status %d: %s", resp.StatusCode, body.String())
	}
}

// getParity GETs url and decodes the JSON body into out, failing the
// test on any non-200.
func getParity(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: undecodable body: %v", url, err)
	}
}

type distParityResp struct {
	Reachable bool    `json:"reachable"`
	Dist      float64 `json:"dist"`
	Hub       int     `json:"hub"`
}

type pathsParityResp struct {
	Reachable bool    `json:"reachable"`
	Dist      float64 `json:"dist"`
	Path      []int   `json:"path"`
}

type knnParityResp struct {
	Neighbors []chl.Neighbor `json:"neighbors"`
}

// checkDistParity sweeps pairs through GET /dist against the oracle.
func checkDistParity(t *testing.T, base string, o *parityOracle, pairs [][2]int) {
	t.Helper()
	for _, p := range pairs {
		u, v := p[0], p[1]
		var r distParityResp
		getParity(t, fmt.Sprintf("%s/dist?u=%d&v=%d", base, u, v), &r)
		want := o.from(u)[v]
		if reach := want != chl.Infinity; r.Reachable != reach {
			t.Fatalf("/dist(%d,%d) reachable = %v, oracle says %v", u, v, r.Reachable, reach)
		}
		if r.Reachable && r.Dist != want {
			t.Fatalf("/dist(%d,%d) = %v, oracle says %v", u, v, r.Dist, want)
		}
	}
}

// checkPathsParity verifies GET /paths on each pair: the total is the
// oracle's distance, the sequence is a u→…→v walk whose every waypoint
// provably lies on a shortest path, and — the acceptance bar — the
// consecutive segments' own /dist answers re-sum to the total bit for
// bit.
func checkPathsParity(t *testing.T, base string, o *parityOracle, pairs [][2]int) {
	t.Helper()
	for _, p := range pairs {
		u, v := p[0], p[1]
		var r pathsParityResp
		getParity(t, fmt.Sprintf("%s/paths?u=%d&v=%d", base, u, v), &r)
		want := o.from(u)[v]
		if reach := want != chl.Infinity; r.Reachable != reach {
			t.Fatalf("/paths(%d,%d) reachable = %v, oracle says %v", u, v, r.Reachable, reach)
		}
		if !r.Reachable {
			if len(r.Path) != 0 {
				t.Fatalf("/paths(%d,%d) unreachable but returned a path %v", u, v, r.Path)
			}
			continue
		}
		if r.Dist != want {
			t.Fatalf("/paths(%d,%d) dist = %v, oracle says %v", u, v, r.Dist, want)
		}
		if len(r.Path) < 1 || r.Path[0] != u || r.Path[len(r.Path)-1] != v {
			t.Fatalf("/paths(%d,%d) sequence %v does not run u→v", u, v, r.Path)
		}
		seen := map[int]bool{}
		for _, w := range r.Path {
			if seen[w] {
				t.Fatalf("/paths(%d,%d) revisits vertex %d: %v", u, v, w, r.Path)
			}
			seen[w] = true
			// Every waypoint lies on a shortest u→v path.
			if o.from(u)[w]+o.from(w)[v] != want {
				t.Fatalf("/paths(%d,%d): waypoint %d is off every shortest path (%v + %v vs %v)",
					u, v, w, o.from(u)[w], o.from(w)[v], want)
			}
		}
		// Segments re-sum to the total through the same stack's /dist.
		var sum float64
		for i := 0; i+1 < len(r.Path); i++ {
			a, b := r.Path[i], r.Path[i+1]
			var seg distParityResp
			getParity(t, fmt.Sprintf("%s/dist?u=%d&v=%d", base, a, b), &seg)
			if !seg.Reachable || seg.Dist != o.from(a)[b] {
				t.Fatalf("/paths(%d,%d): segment (%d,%d) /dist = (%v,%v), oracle says %v",
					u, v, a, b, seg.Dist, seg.Reachable, o.from(a)[b])
			}
			sum += seg.Dist
		}
		if sum != r.Dist {
			t.Fatalf("/paths(%d,%d): segments re-sum to %v, total says %v", u, v, sum, r.Dist)
		}
	}
}

// checkKNNParity verifies GET /knn: the result is exactly the oracle's
// k nearest reachable targets under the (distance, vertex) order, and
// every neighbor's (dist, hub) is the stack's own /dist answer for that
// pair.
func checkKNNParity(t *testing.T, base string, o *parityOracle, n int, sources []int, ks []int) {
	t.Helper()
	for _, u := range sources {
		du := o.from(u)
		var all []chl.Neighbor
		for v := 0; v < n; v++ {
			if v != u && du[v] != chl.Infinity {
				all = append(all, chl.Neighbor{V: v, Dist: du[v]})
			}
		}
		// Already sorted by (dist, v)? No — by v; sort by (dist, v).
		for i := 1; i < len(all); i++ {
			for j := i; j > 0 && (all[j].Dist < all[j-1].Dist || (all[j].Dist == all[j-1].Dist && all[j].V < all[j-1].V)); j-- {
				all[j], all[j-1] = all[j-1], all[j]
			}
		}
		for _, k := range ks {
			if k < 1 || k > n {
				continue
			}
			var r knnParityResp
			getParity(t, fmt.Sprintf("%s/knn?u=%d&k=%d", base, u, k), &r)
			wantLen := k
			if len(all) < k {
				wantLen = len(all)
			}
			if len(r.Neighbors) != wantLen {
				t.Fatalf("/knn(%d,%d) returned %d neighbors, oracle says %d", u, k, len(r.Neighbors), wantLen)
			}
			for i, nb := range r.Neighbors {
				if nb.V != all[i].V || nb.Dist != all[i].Dist {
					t.Fatalf("/knn(%d,%d)[%d] = (%d,%v), oracle says (%d,%v)", u, k, i, nb.V, nb.Dist, all[i].V, all[i].Dist)
				}
				var d distParityResp
				getParity(t, fmt.Sprintf("%s/dist?u=%d&v=%d", base, u, nb.V), &d)
				if !d.Reachable || d.Dist != nb.Dist || d.Hub != nb.Hub {
					t.Fatalf("/knn(%d,%d)[%d]: neighbor (%d,%v,hub %d) disagrees with /dist (%v,%v,hub %d)",
						u, k, i, nb.V, nb.Dist, nb.Hub, d.Dist, d.Reachable, d.Hub)
				}
			}
		}
	}
}

// checkMatrixParity POSTs one sources × targets /matrix request and
// verifies the NDJSON stream line by line against the oracle: the
// header first, then one row per source in request order, -1 marking
// unreachable.
func checkMatrixParity(t *testing.T, base string, o *parityOracle, sources, targets []int) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"sources": sources, "targets": targets})
	resp, err := http.Post(base+"/matrix", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /matrix: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /matrix: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("POST /matrix: Content-Type %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("/matrix stream ended before the header line")
	}
	var header struct {
		Targets []int `json:"targets"`
		Rows    int   `json:"rows"`
	}
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		t.Fatalf("/matrix header line: %v", err)
	}
	if header.Rows != len(sources) || len(header.Targets) != len(targets) {
		t.Fatalf("/matrix header = %d rows × %d targets, want %d × %d", header.Rows, len(header.Targets), len(sources), len(targets))
	}
	for i, tgt := range header.Targets {
		if tgt != targets[i] {
			t.Fatalf("/matrix header target[%d] = %d, want %d", i, tgt, targets[i])
		}
	}
	for _, u := range sources {
		if !sc.Scan() {
			t.Fatalf("/matrix stream ended before source %d's row", u)
		}
		var row struct {
			U     int       `json:"u"`
			Dists []float64 `json:"dists"`
			Error string    `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("/matrix row line: %v", err)
		}
		if row.Error != "" {
			t.Fatalf("/matrix stream aborted: %s", row.Error)
		}
		if row.U != u || len(row.Dists) != len(targets) {
			t.Fatalf("/matrix row u=%d with %d dists, want u=%d with %d", row.U, len(row.Dists), u, len(targets))
		}
		du := o.from(u)
		for j, v := range targets {
			want := du[v]
			if want == chl.Infinity {
				want = -1
			}
			if row.Dists[j] != want {
				t.Fatalf("/matrix row %d target %d = %v, oracle says %v", u, v, row.Dists[j], want)
			}
		}
	}
	if sc.Scan() {
		t.Fatalf("/matrix stream has trailing data after the last row: %q", sc.Text())
	}
}

// TestWorkloadParityMatrix is the harness: {packed, compressed} ×
// {undirected, directed} × {flat, sharded, replicated} × {dist, paths,
// knn, matrix}, all against the Dijkstra oracle. The undirected fixture
// is deliberately disconnected so Infinity flows through every workload
// and wire format.
func TestWorkloadParityMatrix(t *testing.T) {
	type fixture struct {
		g  *chl.Graph
		fx *chl.FlatIndex
	}
	fixtures := map[string]fixture{}
	{
		g := chl.GenerateRandom(240, 400, 9, 3)
		_, fx := buildFrozen(t, g)
		fixtures["undirected"] = fixture{g, fx}
	}
	{
		g := chl.GenerateRandomDirected(220, 1100, 9, 8)
		_, fx := buildDirectedFrozen(t, g)
		fixtures["directed"] = fixture{g, fx}
	}
	for dirName, f := range fixtures {
		for _, format := range []string{"packed", "compressed"} {
			fx := f.fx
			if format == "compressed" {
				fx = compress(t, fx)
			}
			t.Run(dirName+"/"+format, func(t *testing.T) {
				o := newParityOracle(f.g)
				n := fx.NumVertices()
				// Deterministic probe sets: a spread of pairs including
				// u==v and (on the sparse fixture) unreachable ones.
				var pairs [][2]int
				for i := 0; i < 40; i++ {
					pairs = append(pairs, [2]int{(i * 37) % n, (i*101 + 13) % n})
				}
				pairs = append(pairs, [2]int{5, 5})
				sources := []int{0, 7 % n, (n / 2) % n, n - 1}
				targets := []int{1, 3 % n, (n / 3) % n, (2 * n / 3) % n, n - 2, n - 1}

				// The patched pass mutates the serving state, so its
				// oracle is a fresh Dijkstra over the patched graph.
				ops := parityPatchOps(f.g)
				patched, err := chl.ApplyPatch(f.g, ops)
				if err != nil {
					t.Fatalf("applying parity patch: %v", err)
				}
				po := newParityOracle(patched)

				for _, st := range parityStacks(t, fx, f.g) {
					t.Run(st.name, func(t *testing.T) {
						checkDistParity(t, st.base, o, pairs)
						checkPathsParity(t, st.base, o, pairs[:24])
						checkKNNParity(t, st.base, o, n, sources, []int{1, 3, 9, n})
						checkMatrixParity(t, st.base, o, sources, targets)

						// Patched pass: POST the edge updates, then every
						// workload must answer from the mutated graph —
						// same == assertions, new oracle. No rebuild
						// happened; the stack serves frozen labels plus
						// the delta overlay correction.
						postUpdate(t, st.base, ops)
						checkDistParity(t, st.base, po, pairs)
						checkPathsParity(t, st.base, po, pairs[:24])
						checkKNNParity(t, st.base, po, n, sources, []int{1, 3, 9, n})
						checkMatrixParity(t, st.base, po, sources, targets)
					})
				}
			})
		}
	}
}

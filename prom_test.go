package chl

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestMetricsLatencyBucketsFakeClock steps a FakeClock inside an
// instrumented handler and asserts exact histogram placement — the
// deterministic test the Clock threading in httpMetrics.wrap exists
// for: with the wall clock, a 50µs request could land in any of the
// first buckets depending on scheduler luck.
func TestMetricsLatencyBucketsFakeClock(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	m := newHTTPMetrics(fc, "/dist")

	var advance time.Duration
	var status int
	h := m.wrap("/dist", func(w http.ResponseWriter, r *http.Request) {
		fc.Advance(advance)
		if status != 0 {
			w.WriteHeader(status)
		}
	})

	calls := []struct {
		d      time.Duration
		status int
		bucket int // index into latencyBuckets the duration must land in
	}{
		{50 * time.Microsecond, 0, 0},     // ≤ 100µs
		{3 * time.Millisecond, 0, 5},      // ≤ 5ms
		{700 * time.Millisecond, 503, 12}, // ≤ 1s
	}
	for _, c := range calls {
		advance, status = c.d, c.status
		h(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/dist", nil))
	}

	e := m.endpoint("/dist")
	if got := e.hist.count.Load(); got != int64(len(calls)) {
		t.Fatalf("count = %d, want %d", got, len(calls))
	}
	var wantSum time.Duration
	for _, c := range calls {
		wantSum += c.d
	}
	if got := e.hist.sumNanos.Load(); got != int64(wantSum) {
		t.Errorf("sumNanos = %d, want %d", got, int64(wantSum))
	}
	for i := range latencyBuckets {
		want := int64(0)
		for _, c := range calls {
			if c.bucket == i {
				want++
			}
		}
		if got := e.hist.buckets[i].Load(); got != want {
			t.Errorf("bucket %d (le %g): %d observations, want %d", i, latencyBuckets[i], got, want)
		}
	}
	if got := e.requests.Load(); got != int64(len(calls)) {
		t.Errorf("requests = %d, want %d", got, len(calls))
	}
	if got := e.errors.Load(); got != 1 {
		t.Errorf("errors = %d, want 1 (the 503)", got)
	}

	// The exposition reflects the same placements, cumulatively.
	var sb strings.Builder
	m.writeTo(&sb, "chl")
	for _, line := range []string{
		`chl_http_request_duration_seconds_bucket{endpoint="/dist",le="0.0001"} 1`,
		`chl_http_request_duration_seconds_bucket{endpoint="/dist",le="0.005"} 2`,
		`chl_http_request_duration_seconds_bucket{endpoint="/dist",le="1"} 3`,
		`chl_http_request_duration_seconds_count{endpoint="/dist"} 3`,
		`chl_http_request_errors_total{endpoint="/dist"} 1`,
	} {
		if !strings.Contains(sb.String(), line) {
			t.Errorf("exposition missing %q:\n%s", line, sb.String())
		}
	}
}

package chl

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts the time sources the router's traffic machinery reads:
// replica ejection and probation deadlines, hedge timers, and the
// per-client token buckets all go through the router's Clock instead of
// the time package directly. Production routers use the real clock
// (RouterConfig.Clock nil); tests inject a FakeClock and step it
// explicitly, which is what lets the probation/hedging/quota tests run
// deterministically with no real sleeps.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time once d has elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a stoppable timer that fires once after d.
	NewTimer(d time.Duration) Timer
}

// Timer is the stoppable half of Clock.NewTimer — time.Timer's shape,
// behind an interface so a fake clock can fire it on demand.
type Timer interface {
	// C returns the channel the timer delivers on.
	C() <-chan time.Time
	// Stop prevents the timer from firing, reporting whether it was
	// still pending. A fired or stopped timer returns false.
	Stop() bool
}

// realClock is the production Clock: straight delegation to package time.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) NewTimer(d time.Duration) Timer         { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }

// FakeClock is a manually advanced Clock for tests: Now returns a fixed
// instant until Advance moves it, and Advance fires every timer that has
// come due. It is exported because RouterConfig.Clock is — embedders
// testing their own router wiring need the same determinism this
// package's tests use. Safe for concurrent use.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

// NewFakeClock returns a FakeClock pinned at start.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{now: start} }

// Now returns the fake instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After is NewTimer(d).C() — the timer cannot be stopped, matching
// time.After.
func (c *FakeClock) After(d time.Duration) <-chan time.Time { return c.NewTimer(d).C() }

// NewTimer returns a timer that fires when the clock is advanced past
// d from now. A non-positive d fires immediately, like time.NewTimer.
func (c *FakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.fired = true
		t.ch <- c.now
		return t
	}
	c.timers = append(c.timers, t)
	return t
}

// Advance moves the clock forward by d and fires every pending timer
// whose deadline has passed, in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due, keep []*fakeTimer
	for _, t := range c.timers {
		if t.at.After(now) {
			keep = append(keep, t)
		} else {
			due = append(due, t)
		}
	}
	c.timers = keep
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, t := range due {
		t.fire(now)
	}
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time

	mu      sync.Mutex
	fired   bool
	stopped bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	pending := !t.fired && !t.stopped
	t.stopped = true
	return pending
}

func (t *fakeTimer) fire(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fired || t.stopped {
		return
	}
	t.fired = true
	t.ch <- now // buffered: never blocks
}

package chl

import (
	"io"
	"os"

	"repro/internal/delta"
	"repro/internal/graph"
)

// Graph is a weighted graph in compressed sparse row form. Edge weights
// must be strictly positive. Construct one with NewGraphBuilder, a
// generator, or a reader below.
type Graph = graph.Graph

// GraphBuilder accumulates edges into an immutable Graph.
type GraphBuilder = graph.Builder

// Infinity is the distance reported for unreachable vertex pairs.
const Infinity = graph.Infinity

// NewGraphBuilder returns a builder for a graph with n vertices.
func NewGraphBuilder(n int, directed bool) *GraphBuilder {
	return graph.NewBuilder(n, directed)
}

// GenerateRoadGrid builds a road-network-like lattice graph (high diameter,
// low tree-width): the synthetic twin of the paper's DIMACS road datasets.
func GenerateRoadGrid(rows, cols int, seed int64) *Graph {
	return graph.RoadGrid(rows, cols, seed)
}

// GenerateScaleFree builds a Barabási–Albert scale-free graph with uniform
// [1, √n) weights (§7.1.1): the synthetic twin of the paper's social and
// web datasets.
func GenerateScaleFree(n, edgesPerVertex int, seed int64) *Graph {
	return graph.BarabasiAlbert(n, edgesPerVertex, seed)
}

// GenerateRandom builds an Erdős–Rényi-style random graph with m undirected
// edges and integer weights in [1, maxWeight].
func GenerateRandom(n, m, maxWeight int, seed int64) *Graph {
	return graph.ErdosRenyi(n, m, maxWeight, seed)
}

// GenerateRandomDirected builds a random directed graph.
func GenerateRandomDirected(n, m, maxWeight int, seed int64) *Graph {
	return graph.RandomDirected(n, m, maxWeight, seed)
}

// GenerateDataset builds one of the named synthetic datasets used by the
// experiment harness ("CAL", "SKIT", ... — see DatasetNames). scale
// multiplies the baseline size; 1 targets seconds of preprocessing.
func GenerateDataset(name string, scale float64, seed int64) (*Graph, error) {
	return graph.GenerateByName(name, scale, seed)
}

// DatasetNames lists the synthetic dataset names, in the order of the
// paper's Table 2.
func DatasetNames() []string { return graph.DatasetNames() }

// ReadDIMACS parses a DIMACS shortest-path (.gr) graph.
func ReadDIMACS(r io.Reader, directed bool) (*Graph, error) {
	return graph.ReadDIMACS(r, directed)
}

// ReadDIMACSFile parses a DIMACS .gr file from disk.
func ReadDIMACSFile(path string, directed bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadDIMACS(f, directed)
}

// WriteDIMACS writes a graph in DIMACS .gr format.
func WriteDIMACS(w io.Writer, g *Graph) error { return graph.WriteDIMACS(w, g) }

// ReadEdgeList parses a whitespace "u v [w]" edge list (0-indexed; '#'/'%'
// comments).
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	return graph.ReadEdgeList(r, directed)
}

// WriteEdgeList writes a graph as a 0-indexed edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// EdgeOp is one edge operation in a patch log: insert (add u v w),
// delete (del u v), or reweight (set u v w). See EdgeOpAdd/Del/Set and
// ParsePatchLog for the text format the /update endpoint accepts.
type EdgeOp = delta.Op

// Edge-operation kinds for constructing EdgeOps programmatically.
const (
	EdgeOpAdd = delta.OpAdd
	EdgeOpDel = delta.OpDel
	EdgeOpSet = delta.OpSet
)

// ParsePatchLog parses the text patch-log format: one op per line —
// "add u v w", "del u v", "set u v w" — blank lines and '#' comments
// ignored. This is the body format of POST /update and the on-disk
// format of the update journal.
func ParsePatchLog(b []byte) ([]EdgeOp, error) { return delta.ParsePatchLog(b) }

// FormatPatchLog renders ops in the text format ParsePatchLog reads.
func FormatPatchLog(ops []EdgeOp) []byte { return delta.FormatPatchLog(ops) }

// ApplyPatch applies a patch log to a graph and returns the patched
// graph. Ops are validated in order: add requires the edge absent,
// del/set require it present. Compaction folds an overlay into a fresh
// index by rebuilding over exactly this graph.
func ApplyPatch(g *Graph, ops []EdgeOp) (*Graph, error) { return delta.ApplyPatch(g, ops) }

// LargestComponent returns the subgraph induced by the largest (weakly)
// connected component and the mapping from new ids to the originals.
func LargestComponent(g *Graph) (*Graph, []int) { return graph.LargestComponent(g) }

// IsConnected reports whether g is (weakly) connected.
func IsConnected(g *Graph) bool { return graph.IsConnected(g) }

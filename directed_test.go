package chl_test

// Tests for directed flat serving end to end: freeze/save/mmap parity
// against the in-memory directed index, the ordered-pair answer cache
// (the (u,v)/(v,u) aliasing regression), backward-row /shardquery
// fetches, and router-vs-single-process parity on sharded and replicated
// directed clusters. The CI race job runs all of this under -race.

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	chl "repro"
	"repro/internal/label"
	"repro/internal/shard"
)

// buildDirectedFrozen builds a directed index (sequential PLL, the
// reference directed constructor) and freezes it.
func buildDirectedFrozen(t *testing.T, g *chl.Graph) (*chl.Index, *chl.FlatIndex) {
	t.Helper()
	if !g.Directed() {
		t.Fatal("fixture graph is not directed")
	}
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoSeqPLL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fx, err := ix.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if !fx.Directed() {
		t.Fatal("frozen directed index reports undirected")
	}
	return ix, fx
}

// findAsymmetricPair returns a pair with d(u→v) ≠ d(v→u) — the fixture
// property the ordered-cache regression tests depend on.
func findAsymmetricPair(t *testing.T, ix *chl.Index) (int, int) {
	t.Helper()
	n := ix.NumVertices()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if ix.Query(u, v) != ix.Query(v, u) {
				return u, v
			}
		}
	}
	t.Fatal("fixture has no asymmetric pair; it does not exercise directedness")
	return 0, 0
}

// directedFixtures returns the graphs the parity tests sweep: a denser
// graph where most pairs connect and a sparse one where many queries hit
// the cached Dist == Infinity path.
func directedFixtures() map[string]*chl.Graph {
	return map[string]*chl.Graph{
		"dense":  chl.GenerateRandomDirected(350, 2100, 9, 1),
		"sparse": chl.GenerateRandomDirected(300, 420, 9, 2), // many unreachable pairs
	}
}

// The directed acceptance bar at the lowest layer: the flat engine's
// four kernels (merge, merge+hub, hash-join, hash-join+hub) answer
// byte-identically to the in-memory directed index, in both pair orders.
func TestDirectedFlatParity(t *testing.T) {
	for name, g := range directedFixtures() {
		t.Run(name, func(t *testing.T) {
			ix, fx := buildDirectedFrozen(t, g)
			findAsymmetricPair(t, ix) // fixture sanity
			n := g.NumVertices()
			rng := rand.New(rand.NewSource(7))
			s := fx.NewScratch()
			unreachable := 0
			for i := 0; i < 1500; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				want := ix.Query(u, v)
				if want == chl.Infinity {
					unreachable++
				}
				if got := fx.Query(u, v); got != want {
					t.Fatalf("flat query(%d→%d) = %v, in-memory says %v", u, v, got, want)
				}
				if got := fx.QueryWith(s, u, v); got != want {
					t.Fatalf("flat hash-join query(%d→%d) = %v, want %v", u, v, got, want)
				}
				fd, fh, fok := fx.QueryHub(u, v)
				wd, wh, wok := ix.QueryHub(u, v)
				if fd != wd || fok != wok || (wok && fh != wh) {
					t.Fatalf("flat QueryHub(%d→%d) = (%v,%d,%v), want (%v,%d,%v)", u, v, fd, fh, fok, wd, wh, wok)
				}
				sd, sh, sok := fx.QueryHubWith(s, u, v)
				if sd != wd || sok != wok || (wok && sh != wh) {
					t.Fatalf("flat QueryHubWith(%d→%d) = (%v,%d,%v), want (%v,%d,%v)", u, v, sd, sh, sok, wd, wh, wok)
				}
			}
			if name == "sparse" && unreachable == 0 {
				t.Fatal("sparse fixture produced no unreachable pairs")
			}
		})
	}
}

// Save → load (heap and mmap) → thaw must preserve directed answers
// exactly, and the file must carry the v3 layout.
func TestDirectedFlatSaveLoadMmap(t *testing.T) {
	g := chl.GenerateRandomDirected(250, 1200, 9, 3)
	ix, fx := buildDirectedFrozen(t, g)
	var buf bytes.Buffer
	if err := fx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if ver := buf.Bytes()[4]; ver != 3 {
		t.Fatalf("directed flat file written as CHFX version %d, want 3", ver)
	}
	path := t.TempDir() + "/dix.flat"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	heap, err := chl.LoadFlatFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := chl.OpenFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	for _, back := range []*chl.FlatIndex{heap, mapped} {
		if !back.Directed() {
			t.Fatal("loaded directed index reports undirected")
		}
		if back.TotalLabels() != fx.TotalLabels() || back.NumVertices() != fx.NumVertices() {
			t.Fatalf("shape changed: %d/%d labels, %d/%d vertices",
				back.TotalLabels(), fx.TotalLabels(), back.NumVertices(), fx.NumVertices())
		}
	}
	rng := rand.New(rand.NewSource(11))
	th := heap.Thaw()
	if !th.Directed() {
		t.Fatal("thawed directed index reports undirected")
	}
	for i := 0; i < 1000; i++ {
		u, v := rng.Intn(250), rng.Intn(250)
		want := ix.Query(u, v)
		if heap.Query(u, v) != want {
			t.Fatalf("heap-loaded index disagrees at (%d→%d)", u, v)
		}
		if mapped.Query(u, v) != want {
			t.Fatalf("mapped index disagrees at (%d→%d)", u, v)
		}
		if th.Query(u, v) != want {
			t.Fatalf("thawed index disagrees at (%d→%d)", u, v)
		}
	}
}

// The parallel batch engine over a directed index, cached and uncached,
// matches the in-memory index — including repeat pairs in both orders,
// which an unordered cache would conflate.
func TestDirectedBatchEngine(t *testing.T) {
	g := chl.GenerateRandomDirected(300, 1500, 9, 4)
	ix, fx := buildDirectedFrozen(t, g)
	u0, v0 := findAsymmetricPair(t, ix)
	eng := chl.NewBatchEngineFlat(fx)
	eng.SetCache(chl.NewDirectedCache(1 << 12))
	rng := rand.New(rand.NewSource(13))
	pairs := make([]chl.QueryPair, 4000)
	for i := range pairs {
		if i%10 == 0 { // salt with both orders of the asymmetric pair
			if i%20 == 0 {
				pairs[i] = chl.QueryPair{U: u0, V: v0}
			} else {
				pairs[i] = chl.QueryPair{U: v0, V: u0}
			}
			continue
		}
		pairs[i] = chl.QueryPair{U: rng.Intn(300), V: rng.Intn(300)}
	}
	for round := 0; round < 3; round++ { // later rounds serve from cache
		dists := eng.Batch(pairs)
		for i, p := range pairs {
			if want := ix.Query(p.U, p.V); dists[i] != want {
				t.Fatalf("round %d batch (%d→%d) = %v, want %v", round, p.U, p.V, dists[i], want)
			}
		}
	}
	if st := eng.Cache().Stats(); st.Hits == 0 || !st.Directed {
		t.Fatalf("directed cache unused or mis-keyed: %+v", st)
	}
	// Single-query paths through the cache, both orders.
	if d := eng.Query(u0, v0); d != ix.Query(u0, v0) {
		t.Fatalf("cached engine query(%d→%d) = %v, want %v", u0, v0, d, ix.Query(u0, v0))
	}
	if d := eng.Query(v0, u0); d != ix.Query(v0, u0) {
		t.Fatalf("cached engine query(%d→%d) = %v, want %v", v0, u0, d, ix.Query(v0, u0))
	}
}

// The cache-key regression (ISSUE 5): an unordered cache in front of a
// directed index serves d(v→u) for d(u→v). The ordered cache must keep
// the two entries apart, and the serving tier must wire it in.
func TestDirectedCacheOrderedKeys(t *testing.T) {
	c := chl.NewDirectedCache(64)
	if !c.Directed() {
		t.Fatal("NewDirectedCache not directed")
	}
	c.Put(1, 2, chl.Answer{Dist: 7, Reachable: true})
	if _, hit := c.Get(2, 1); hit {
		t.Fatal("directed cache aliased (1,2) and (2,1)")
	}
	c.Put(2, 1, chl.Answer{Dist: 9, Reachable: true})
	a12, _ := c.Get(1, 2)
	a21, _ := c.Get(2, 1)
	if a12.Dist != 7 || a21.Dist != 9 {
		t.Fatalf("ordered entries collided: (1,2)=%v (2,1)=%v", a12.Dist, a21.Dist)
	}

	// The undirected cache keeps sharing entries (unchanged behavior).
	u := chl.NewCache(64)
	u.Put(1, 2, chl.Answer{Dist: 7, Reachable: true})
	if _, hit := u.Get(2, 1); !hit {
		t.Fatal("undirected cache no longer shares unordered entries")
	}

	// Wiring an unordered cache onto a directed engine is a programming
	// error the engine must refuse loudly.
	g := chl.GenerateRandomDirected(40, 160, 5, 5)
	_, fx := buildDirectedFrozen(t, g)
	eng := chl.NewBatchEngineFlat(fx)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetCache accepted an unordered cache on a directed engine")
			}
		}()
		eng.SetCache(chl.NewCache(64))
	}()
}

// End-to-end regression on an asymmetric fixture: a cached Server over a
// directed index must answer (u,v) and then (v,u) each exactly, in both
// query orders — the aliasing the unordered pairKey would have caused.
func TestDirectedServerCacheRegression(t *testing.T) {
	g := chl.GenerateRandomDirected(200, 900, 9, 6)
	ix, fx := buildDirectedFrozen(t, g)
	u, v := findAsymmetricPair(t, ix)
	s := chl.NewServerFromFlat(fx, 1<<12)
	defer s.Close()
	// Warm (u,v) first so a mis-keyed cache would serve it for (v,u).
	for round := 0; round < 2; round++ {
		if d := s.Query(u, v); d != ix.Query(u, v) {
			t.Fatalf("server query(%d→%d) = %v, want %v", u, v, d, ix.Query(u, v))
		}
		if d := s.Query(v, u); d != ix.Query(v, u) {
			t.Fatalf("server query(%d→%d) = %v, want %v (cache served the reversed pair?)", v, u, d, ix.Query(v, u))
		}
	}
	if st := s.Stats(); !st.Directed || st.Cache == nil || !st.Cache.Directed || st.Cache.Hits == 0 {
		t.Fatalf("server stats do not show a hit directed cache: %+v", st)
	}
}

// The directed tentpole acceptance: build → freeze → split → serve →
// route. The router over 3 directed shard servers answers byte-identically
// to both the flat engine and the in-memory directed index, for single
// queries (both orders, witness hubs) and batches, with unreachable pairs
// exercising the cached-Infinity path.
func TestDirectedRouterParity(t *testing.T) {
	for name, g := range directedFixtures() {
		t.Run(name, func(t *testing.T) {
			ix, fx := buildDirectedFrozen(t, g)
			u0, v0 := findAsymmetricPair(t, ix)
			c := startCluster(t, fx, 3, 1<<12)
			defer c.close()
			if !c.manifest.Directed {
				t.Fatal("split manifest of a directed index not marked directed")
			}
			if !c.router.Directed() {
				t.Fatal("router over a directed manifest reports undirected")
			}
			n := fx.NumVertices()
			rng := rand.New(rand.NewSource(5))

			for i := 0; i < 1200; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if i%50 == 0 {
					u, v = u0, v0 // salt both orders of the asymmetric pair
				} else if i%50 == 1 {
					u, v = v0, u0
				}
				got, err := c.router.Query(u, v)
				if err != nil {
					t.Fatalf("router query(%d→%d): %v", u, v, err)
				}
				want := ix.Query(u, v)
				if got != want || fx.Query(u, v) != want {
					t.Fatalf("router query(%d→%d) = %v, want %v", u, v, got, want)
				}
				gd, gh, gok, err := c.router.QueryHub(u, v)
				if err != nil {
					t.Fatal(err)
				}
				wd, wh, wok := ix.QueryHub(u, v)
				if gd != wd || gok != wok || (gok && gh != wh) {
					t.Fatalf("router QueryHub(%d→%d) = (%v,%d,%v), want (%v,%d,%v)", u, v, gd, gh, gok, wd, wh, wok)
				}
			}
			for round := 0; round < 4; round++ {
				pairs := make([]chl.QueryPair, 300)
				for i := range pairs {
					pairs[i] = chl.QueryPair{U: rng.Intn(n), V: rng.Intn(n)}
				}
				pairs[0] = chl.QueryPair{U: u0, V: v0}
				pairs[1] = chl.QueryPair{U: v0, V: u0}
				dists, err := c.router.Batch(pairs)
				if err != nil {
					t.Fatal(err)
				}
				for i, p := range pairs {
					if want := ix.Query(p.U, p.V); dists[i] != want {
						t.Fatalf("round %d batch (%d→%d) = %v, want %v", round, p.U, p.V, dists[i], want)
					}
				}
			}
			st := c.router.Stats()
			if st.CrossJoins == 0 {
				t.Fatal("no cross-shard joins exercised; fixture or partition degenerate")
			}
			if !st.Directed || st.Cache == nil || !st.Cache.Directed {
				t.Fatalf("router stats not directed: %+v", st.Cache)
			}
		})
	}
}

// Replicated directed serving: a directed cluster with a replica group
// still answers byte-identically, including after one replica of each
// group goes down (failover must preserve ordered semantics).
func TestDirectedReplicatedRouterParity(t *testing.T) {
	g := chl.GenerateRandomDirected(260, 1300, 9, 8)
	ix, fx := buildDirectedFrozen(t, g)
	u0, v0 := findAsymmetricPair(t, ix)
	dir := t.TempDir()
	m, err := fx.SaveShards(dir, 2, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	part, err := m.Partition()
	if err != nil {
		t.Fatal(err)
	}
	groups := make([][]string, 2)
	var backends []*httptest.Server
	var servers []*chl.Server
	defer func() {
		for _, ts := range backends {
			ts.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	}()
	for sid := 0; sid < 2; sid++ {
		path, err := chl.ShardFilePath(dir+"/"+shard.ManifestName, m, sid)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ { // two replicas per shard
			s, err := chl.NewServer(path, 1024)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.SetShard(sid, part); err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			servers = append(servers, s)
			backends = append(backends, ts)
			groups[sid] = append(groups[sid], ts.URL)
		}
	}
	r, err := chl.NewRouter(chl.RouterConfig{Manifest: m, ReplicaAddrs: groups, CacheSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		n := fx.NumVertices()
		for i := 0; i < 400; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if i == 0 {
				u, v = u0, v0
			} else if i == 1 {
				u, v = v0, u0
			}
			got, err := r.Query(u, v)
			if err != nil {
				t.Fatalf("%s: router query(%d→%d): %v", stage, u, v, err)
			}
			if want := ix.Query(u, v); got != want {
				t.Fatalf("%s: router query(%d→%d) = %v, want %v", stage, u, v, got, want)
			}
		}
	}
	check("all replicas up", 21)
	// Kill replica 0 of each shard; the router must fail over with the
	// same ordered answers.
	backends[0].Close()
	backends[2].Close()
	check("one replica per shard down", 22)
}

// /shardquery backward rows: a directed shard returns the backward run
// of an owned vertex, and joining it against the forward run answers the
// exact directed distance — the protocol the router's cross-shard path
// relies on.
func TestDirectedShardQueryBackwardRows(t *testing.T) {
	g := chl.GenerateRandomDirected(220, 1100, 9, 9)
	ix, fx := buildDirectedFrozen(t, g)
	c := startCluster(t, fx, 2, 0)
	defer c.close()
	part, err := c.manifest.Partition()
	if err != nil {
		t.Fatal(err)
	}
	n := fx.NumVertices()
	// A cross-shard pair.
	u, v := -1, -1
	for a := 0; a < n && u < 0; a++ {
		for b := 0; b < n; b++ {
			if part.Owner(a) != part.Owner(b) {
				u, v = a, b
				break
			}
		}
	}
	if u < 0 {
		t.Fatal("no cross-shard pair; fixture degenerate")
	}
	fetch := func(sid int, body string) map[string]any {
		resp, err := http.Post(c.backends[sid].URL+"/shardquery", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("shardquery: %d %s", resp.StatusCode, b)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	mu := fetch(part.Owner(u), fmt.Sprintf(`{"vertices":[%d]}`, u))
	mv := fetch(part.Owner(v), fmt.Sprintf(`{"backward":[%d]}`, v))
	if mu["directed"] != true || mv["directed"] != true {
		t.Fatalf("shardquery responses not marked directed: %v / %v", mu["directed"], mv["directed"])
	}
	decodeRow := func(m map[string]any, field, key string) []uint64 {
		rows, ok := m[field].(map[string]any)
		if !ok {
			t.Fatalf("response lacks %s: %v", field, m)
		}
		enc, ok := rows[key].(string)
		if !ok {
			t.Fatalf("%s lacks row %s: %v", field, key, rows)
		}
		b, err := base64.StdEncoding.DecodeString(enc)
		if err != nil {
			t.Fatal(err)
		}
		run, err := label.ParsePackedRun(b, n)
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	fwdU := decodeRow(mu, "rows", fmt.Sprint(u))
	bwdV := decodeRow(mv, "back_rows", fmt.Sprint(v))
	d, _, ok := label.JoinPacked(fwdU, bwdV)
	want := ix.Query(u, v)
	if want == chl.Infinity {
		if ok {
			t.Fatalf("join of unreachable pair (%d→%d) returned %v", u, v, d)
		}
	} else if !ok || d != want {
		t.Fatalf("join of fetched rows (%d→%d) = %v,%v, want %v", u, v, d, ok, want)
	}
}

// An undirected shard file cannot be reloaded into a directed cluster
// slot (and vice versa): the slice's directedness is pinned at SetShard.
func TestDirectedShardReloadRejectsUndirectedFile(t *testing.T) {
	g := chl.GenerateRandomDirected(150, 700, 9, 10)
	_, fx := buildDirectedFrozen(t, g)
	c := startCluster(t, fx, 2, 0)
	defer c.close()
	// An undirected flat file over the SAME vertex count.
	ug := chl.GenerateRandom(150, 400, 9, 3)
	ufx, _ := buildFlat(t, ug)
	path := t.TempDir() + "/undirected.flat"
	if err := ufx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := c.servers[0].Reload(path); err == nil {
		t.Fatal("directed shard reloaded an undirected file")
	} else if !strings.Contains(err.Error(), "directed") {
		t.Fatalf("rejection does not name directedness: %v", err)
	}
}

// A router whose manifest says directed must reject answers from shards
// serving undirected slices — on the same-shard forward path too, where
// the symmetric answer would otherwise be cached as d(u→v) silently.
func TestRouterRejectsDirectednessDrift(t *testing.T) {
	g := chl.GenerateScaleFree(150, 3, 11)
	fx, _ := buildFlat(t, g) // undirected cluster actually serving
	c := startCluster(t, fx, 2, 0)
	defer c.close()
	part, err := c.manifest.Partition()
	if err != nil {
		t.Fatal(err)
	}
	// A manifest claiming the same cluster is directed.
	lied := *c.manifest
	lied.Directed = true
	addrs := make([]string, len(c.backends))
	for i, ts := range c.backends {
		addrs[i] = ts.URL
	}
	r, err := chl.NewRouter(chl.RouterConfig{Manifest: &lied, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	// A same-shard pair (the path that bypasses /shardquery entirely).
	u, v := -1, -1
	for a := 0; a < 150 && u < 0; a++ {
		for b := a + 1; b < 150; b++ {
			if part.Owner(a) == part.Owner(b) {
				u, v = a, b
				break
			}
		}
	}
	if _, err := r.Query(u, v); err == nil || !strings.Contains(err.Error(), "directed") {
		t.Fatalf("same-shard query through drifted cluster: err = %v, want a directedness mismatch", err)
	}
	// And the batch forward path.
	if _, err := r.Batch([]chl.QueryPair{{U: u, V: v}}); err == nil || !strings.Contains(err.Error(), "directed") {
		t.Fatalf("same-shard batch through drifted cluster: err = %v, want a directedness mismatch", err)
	}
}

// The 400-body contract (ISSUE 5 satellite): for malformed and
// out-of-range /dist and /batch requests the router must produce
// byte-identical JSON error bodies to the shard tier's single-process
// server — one schema, no matter which tier rejects.
func TestRouter400BodiesMatchShardTier(t *testing.T) {
	g := chl.GenerateScaleFree(120, 3, 3)
	fx, _ := buildFlat(t, g)
	c := startCluster(t, fx, 2, 0)
	defer c.close()
	single := chl.NewServerFromFlat(fx, 0)
	defer single.Close()
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()
	routerTS := httptest.NewServer(c.router.Handler())
	defer routerTS.Close()

	get := func(base, path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	post := func(base, path, body string) (int, string) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	for _, path := range []string{
		"/dist",               // missing params
		"/dist?u=a&v=2",       // malformed
		"/dist?u=1&v=120",     // out of range (n=120)
		"/dist?u=-5&v=2",      // negative
		"/dist?u=9999&v=9999", // far out of range
	} {
		rc, rb := get(routerTS.URL, path)
		sc, sb := get(singleTS.URL, path)
		if rc != http.StatusBadRequest || sc != http.StatusBadRequest {
			t.Fatalf("GET %s: router %d, shard tier %d, want 400/400", path, rc, sc)
		}
		if rb != sb {
			t.Errorf("GET %s: router 400 body %q != shard tier body %q", path, rb, sb)
		}
	}
	for _, body := range []string{`[[1,2,3]]`, `[[1,500]]`, `{"no":"pairs"}`, `[[1,-1]]`} {
		rc, rb := post(routerTS.URL, "/batch", body)
		sc, sb := post(singleTS.URL, "/batch", body)
		if rc != http.StatusBadRequest || sc != http.StatusBadRequest {
			t.Fatalf("POST /batch %q: router %d, shard tier %d, want 400/400", body, rc, sc)
		}
		if rb != sb {
			t.Errorf("POST /batch %q: router 400 body %q != shard tier body %q", body, rb, sb)
		}
	}
}

package chl

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Answer is one cached point-to-point query result: the exact distance,
// the witness hub (an original vertex id, meaningful only when
// Reachable), and reachability. Unreachable answers (Dist == Infinity)
// are cached too — a fruitless full join over two label runs is exactly
// the work worth not repeating.
type Answer struct {
	Dist      float64
	Hub       int
	Reachable bool
}

// Cache is a sharded, bounded LRU cache of point-to-point query answers.
// Keys are vertex pairs: a cache fronting an undirected index
// canonicalizes them (NewCache — (u,v) and (v,u) share an entry), while
// one fronting a directed index keys on ordered pairs (NewDirectedCache
// — d(u→v) and d(v→u) are different answers and must never alias). The
// key is hashed to one of P power-of-two shards, each an independently
// locked map + intrusive LRU list, so concurrent serving workers contend
// only when they collide on a shard — P scales with GOMAXPROCS.
// Hit/miss counters are lock-free.
//
// A Cache holds answers from exactly one index generation. It has no
// invalidation API on purpose: replacing the index means starting a new
// Cache (Server builds one per Snapshot), which is what makes stale
// answers across a hot swap structurally impossible rather than merely
// unlikely.
//
// The keyspace is pair answers, and nothing else. The rich workloads
// ride this discipline rather than bending it: /paths fills the cache
// with its segments (each segment IS a pair query), /knn deposits its
// results as the (source, neighbor) pair answers they are, and /matrix
// deliberately stays out. No workload ever mints a key from a non-pair
// parameter like k — a /knn for (u=3, k=5) and a /dist for (3,5) can
// therefore never collide (the singleflight layer keeps them apart the
// same way; see flightKind).
type Cache struct {
	shards   []cacheShard
	mask     uint64
	directed bool
	hits     atomic.Int64
	misses   atomic.Int64
}

type cacheShard struct {
	mu  sync.Mutex
	m   map[uint64]*cacheEntry
	cap int
	// Intrusive doubly-linked LRU ring through a sentinel: head.next is
	// most recent, head.prev least recent. No container/list: one
	// allocation per entry, no interface boxing.
	head cacheEntry
}

type cacheEntry struct {
	key        uint64
	a          Answer
	prev, next *cacheEntry
}

// NewCache returns a cache bounded to roughly capacity answers in total,
// spread over a power-of-two number of shards sized to the machine's
// parallelism, keyed on unordered pairs — for engines over undirected
// indexes. Capacities below one shard collapse to a single shard;
// capacity <= 0 returns nil, which every consumer treats as "no cache".
func NewCache(capacity int) *Cache { return newCache(capacity, false) }

// NewDirectedCache is NewCache keyed on ordered pairs, for engines over
// directed indexes: an unordered cache in front of a directed engine
// would serve d(v→u) for d(u→v).
func NewDirectedCache(capacity int) *Cache { return newCache(capacity, true) }

func newCache(capacity int, directed bool) *Cache {
	if capacity <= 0 {
		return nil
	}
	shards := 1
	for shards < runtime.GOMAXPROCS(0)*4 && shards < 256 {
		shards <<= 1
	}
	if capacity < shards {
		shards = 1
	}
	c := &Cache{shards: make([]cacheShard, shards), mask: uint64(shards - 1), directed: directed}
	per := (capacity + shards - 1) / shards
	for i := range c.shards {
		s := &c.shards[i]
		s.m = make(map[uint64]*cacheEntry, per)
		s.cap = per
		s.head.next, s.head.prev = &s.head, &s.head
	}
	return c
}

// pairKey packs the pair into one word — canonicalized for undirected
// caches, order-preserving for directed ones; vertex ids fit in 32 bits
// by the flat format's construction.
func (c *Cache) pairKey(u, v int) uint64 {
	if !c.directed && u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Directed reports whether the cache keys on ordered pairs.
func (c *Cache) Directed() bool { return c != nil && c.directed }

// splitmix64 finalizer: shard selection must not correlate with the key's
// low bits (consecutive vertex ids would pile onto one shard).
func mixKey(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	return k ^ k>>31
}

// Get returns the cached answer for the pair (u,v) — unordered for
// undirected caches, ordered for directed ones — and whether it was
// present, promoting the entry to most-recently-used. Safe for
// concurrent use.
func (c *Cache) Get(u, v int) (Answer, bool) {
	key := c.pairKey(u, v)
	s := &c.shards[mixKey(key)&c.mask]
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return Answer{}, false
	}
	e.unlink()
	s.pushFront(e)
	a := e.a
	s.mu.Unlock()
	c.hits.Add(1)
	return a, true
}

// Put stores the answer for the pair (u,v) under the cache's key
// ordering, evicting the shard's least-recently-used entry when the
// shard is full. Safe for concurrent use.
func (c *Cache) Put(u, v int, a Answer) {
	key := c.pairKey(u, v)
	s := &c.shards[mixKey(key)&c.mask]
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		e.a = a
		e.unlink()
		s.pushFront(e)
		s.mu.Unlock()
		return
	}
	if len(s.m) >= s.cap {
		lru := s.head.prev
		lru.unlink()
		delete(s.m, lru.key)
	}
	e := &cacheEntry{key: key, a: a}
	s.m[key] = e
	s.pushFront(e)
	s.mu.Unlock()
}

func (e *cacheEntry) unlink() {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = &s.head
	e.next = s.head.next
	e.next.prev = e
	s.head.next = e
}

// Len returns the number of cached answers across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// CacheStats is a point-in-time snapshot of a cache's counters, as
// reported under "cache" by the /stats endpoint.
type CacheStats struct {
	Capacity int   `json:"capacity"`
	Entries  int   `json:"entries"`
	Shards   int   `json:"shards"`
	Directed bool  `json:"directed,omitempty"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

// Stats returns the cache's current size and cumulative hit/miss
// counters. Counters are read lock-free, so under concurrent traffic the
// snapshot is approximate by a few operations.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Capacity: c.shards[0].cap * len(c.shards),
		Entries:  c.Len(),
		Shards:   len(c.shards),
		Directed: c.directed,
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
	}
}

// Big-graph processing: the paper's P2 objective — construct a labeling
// whose size exceeds what any single node may store, by partitioning labels
// across a cluster (§5.1 "Label Set Partitioning"), then query it without
// ever assembling it (QFDL).
//
// Run with: go run ./examples/biggraph
package main

import (
	"errors"
	"fmt"
	"log"

	chl "repro"
)

func main() {
	g := chl.GenerateScaleFree(6144, 6, 3)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// First measure the labeling's true size with an unconstrained build.
	free, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoDPLaNT, Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	labelBytes := free.Stats().Bytes
	fmt.Printf("full labeling: %.2f MiB\n", float64(labelBytes)/(1<<20))

	// Simulate nodes whose memory holds only half the labeling (plus the
	// graph). DparaPLL replicates all labels on every node — it cannot
	// process this graph, just like the paper's Figure 8 OOM entries.
	limit := labelBytes/2 + 1
	_, err = chl.Build(g, chl.Options{Algorithm: chl.AlgoDParaPLL, Nodes: 8, MemoryLimitBytes: limit})
	if errors.Is(err, chl.ErrOutOfMemory) {
		fmt.Printf("DparaPLL with %.2f MiB/node: out of memory (labels are replicated)\n",
			float64(limit)/(1<<20))
	} else if err != nil {
		log.Fatal(err)
	} else {
		fmt.Println("unexpected: DparaPLL fit — raise the graph size")
	}

	// PLaNT partitions labels by generating node: 8 nodes with the same
	// budget build the index collaboratively ("effective memory scales in
	// proportion to the number of nodes", §5.1).
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoDPLaNT, Nodes: 8, MemoryLimitBytes: limit})
	if err != nil {
		log.Fatal(err)
	}
	m := ix.Metrics()
	fmt.Printf("PLaNT with the same budget: built %.2f MiB of labels, peak node storage %.2f MiB\n",
		float64(ix.Stats().Bytes)/(1<<20), float64(m.MaxNodeBytes)/(1<<20))

	// Query with fully distributed labels: no node ever holds more than
	// its partition, queries are broadcast + MIN-reduced.
	qe, err := chl.NewQueryEngine(ix, chl.ModeQFDL, 8)
	if err != nil {
		log.Fatal(err)
	}
	var peak int64
	for _, b := range qe.MemoryPerNode() {
		if b > peak {
			peak = b
		}
	}
	fmt.Printf("QFDL deployment: peak node storage %.2f MiB (vs %.2f MiB full)\n",
		float64(peak)/(1<<20), float64(labelBytes)/(1<<20))
	d, lat := qe.Query(0, 6143)
	fmt.Printf("d(0, 6143) = %g in %v modeled latency\n", d, lat)
}

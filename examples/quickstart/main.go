// Quickstart: build a Canonical Hub Labeling for a small road network and
// answer shortest-distance queries with it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	chl "repro"
)

func main() {
	// A 64×64 road-like grid: ~4k intersections, ~9k road segments with
	// travel-time weights.
	g := chl.GenerateRoadGrid(64, 64, 42)
	fmt.Printf("road network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Build the CHL with GLL — the paper's best shared-memory algorithm.
	// The ranking (network hierarchy) is picked automatically: sampled
	// betweenness for road-like topologies.
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL})
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("index: %d labels, %.1f per vertex (%.2f MiB)\n",
		st.TotalLabels, st.ALS, float64(st.Bytes)/(1<<20))

	// Point-to-point shortest distance queries are two sorted-list merges.
	for _, q := range [][2]int{{0, 4095}, {17, 3942}, {100, 200}} {
		d, hub, _ := ix.QueryHub(q[0], q[1])
		fmt.Printf("d(%d, %d) = %g   (shortest path passes through hub %d)\n",
			q[0], q[1], d, hub)
	}

	// The index serializes for later use.
	if err := ix.SaveFile("/tmp/quickstart.chl"); err != nil {
		log.Fatal(err)
	}
	back, err := chl.LoadFile("/tmp/quickstart.chl")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded index answers d(0, 4095) = %g\n", back.Query(0, 4095))
}

// Road navigation: the paper's motivating route-planning workload. Builds
// the CHL for a road network, compares hub-label queries against
// bidirectional Dijkstra for correctness and work, and demonstrates that
// PLaNT alone is both scalable and efficient on high-diameter road
// topologies (§7.3 "Graph Topologies").
//
// Run with: go run ./examples/roadnavigation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	chl "repro"
)

func main() {
	// A city-scale road grid with betweenness ranking — highways (high
	// betweenness) become the top hubs, mirroring how a good network
	// hierarchy ranks "highways vs residential streets" (§1).
	g := chl.GenerateRoadGrid(96, 96, 7)
	ord := chl.RankByBetweenness(g, 16, 7)
	fmt.Printf("road network: %d intersections, %d segments\n", g.NumVertices(), g.NumEdges())

	// On road networks PLaNT needs no distance queries at all and its
	// trees terminate early — build the CHL with it directly.
	start := time.Now()
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoPLaNT, Order: ord})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PLaNT built the CHL in %v: ALS %.1f\n", time.Since(start), ix.Stats().ALS)
	m := ix.Metrics()
	fmt.Printf("  %d trees, %d vertices explored, %d distance queries (PLaNT uses none)\n",
		m.Trees, m.VerticesExplored, m.DistanceQueries)

	// Route queries: a navigation frontend fires thousands per second.
	rng := rand.New(rand.NewSource(9))
	n := g.NumVertices()
	const routes = 200_000
	pairs := make([][2]int, routes)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	start = time.Now()
	var checksum float64
	for _, p := range pairs {
		checksum += ix.Query(p[0], p[1])
	}
	elapsed := time.Since(start)
	fmt.Printf("%d route queries in %v (%.2f Mq/s, checksum %.0f)\n",
		routes, elapsed, float64(routes)/elapsed.Seconds()/1e6, checksum)

	// The top-ranked hubs are the network's "highways": the label of any
	// vertex starts with them.
	fmt.Println("top 5 hubs by hierarchy:", ord.Perm[:5])
	labels := ix.Labels(0)
	fmt.Printf("vertex 0 carries %d labels; its most important hubs: ", len(labels))
	for i := 0; i < 5 && i < len(labels); i++ {
		fmt.Printf("%d(d=%g) ", labels[i].Hub, labels[i].Dist)
	}
	fmt.Println()
}

// Social-network similarity: PPSD queries on a weighted scale-free graph —
// the paper's "similarity analysis on biological and social networks"
// workload. Shows why the Hybrid algorithm exists: on scale-free
// topologies pure PLaNT pays a large exploration overhead on the fringe
// (high Ψ), while Hybrid switches to DGLL and wins (§5.2.1, §7.3).
//
// Run with: go run ./examples/socialdistance
package main

import (
	"fmt"
	"log"

	chl "repro"
)

func main() {
	// A scale-free "social network": preferential attachment, weights
	// uniform in [1, √n) as in §7.1.1; degree ranking puts the celebrity
	// core on top of the hierarchy.
	g := chl.GenerateScaleFree(4096, 4, 11)
	ord := chl.RankByDegree(g)
	fmt.Printf("social network: %d users, %d ties\n", g.NumVertices(), g.NumEdges())

	// Build with the distributed Hybrid algorithm on a simulated 8-node
	// cluster: PLaNT for the label-rich core trees, DGLL for the fringe.
	ix, err := chl.Build(g, chl.Options{
		Algorithm:    chl.AlgoHybrid,
		Order:        ord,
		Nodes:        8,
		PsiThreshold: 100, // §7.1: Ψth = 100 for scale-free networks
	})
	if err != nil {
		log.Fatal(err)
	}
	m := ix.Metrics()
	fmt.Printf("Hybrid on %d nodes: ALS %.1f, %d bytes of label traffic, %d syncs\n",
		m.Nodes, ix.Stats().ALS, m.BytesSent, m.Synchronizations)
	if m.SwitchedAtTree >= 0 {
		fmt.Printf("  PLaNTed the first %d trees, then switched to DGLL (Ψ > 100)\n", m.SwitchedAtTree)
	} else {
		fmt.Println("  never switched: PLaNT stayed efficient throughout")
	}

	// "Degrees of separation" in weighted terms between random user pairs.
	celebrities := ord.Perm[:3]
	fmt.Println("most connected users:", celebrities)
	for _, pair := range [][2]int{{100, 4000}, {1, 4095}, {2048, 2049}} {
		d, hub, ok := ix.QueryHub(pair[0], pair[1])
		if !ok {
			fmt.Printf("users %d and %d are not connected\n", pair[0], pair[1])
			continue
		}
		fmt.Printf("similarity distance(%d, %d) = %g — connected through user %d\n",
			pair[0], pair[1], d, hub)
	}

	// Distributed querying: the labels are already partitioned across the
	// 8 nodes; QDOL answers batches with point-to-point routing.
	qe, err := chl.NewQueryEngine(ix, chl.ModeQDOL, 8)
	if err != nil {
		log.Fatal(err)
	}
	pairs := make([]chl.QueryPair, 50_000)
	for i := range pairs {
		pairs[i] = chl.QueryPair{U: (i * 37) % 4096, V: (i * 101) % 4096}
	}
	r := qe.Batch(pairs)
	fmt.Printf("QDOL batch: %.2f Mq/s modeled throughput, %v mean latency\n",
		r.Throughput/1e6, r.MeanLatency)
}

package chl_test

import (
	"sync"
	"testing"

	chl "repro"
)

func TestCacheBasics(t *testing.T) {
	c := chl.NewCache(128)
	if c == nil {
		t.Fatal("NewCache(128) = nil")
	}
	if _, hit := c.Get(1, 2); hit {
		t.Fatal("empty cache hit")
	}
	c.Put(1, 2, chl.Answer{Dist: 7, Hub: 3, Reachable: true})
	a, hit := c.Get(1, 2)
	if !hit || a.Dist != 7 || a.Hub != 3 || !a.Reachable {
		t.Fatalf("Get(1,2) = %+v, %v", a, hit)
	}
	// Unordered pairs share an entry.
	if a, hit := c.Get(2, 1); !hit || a.Dist != 7 {
		t.Fatalf("Get(2,1) = %+v, %v; want the (1,2) entry", a, hit)
	}
	// Unreachable answers are cached too.
	c.Put(4, 5, chl.Answer{Dist: chl.Infinity})
	if a, hit := c.Get(4, 5); !hit || a.Reachable || a.Dist != chl.Infinity {
		t.Fatalf("unreachable answer not cached: %+v, %v", a, hit)
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("counters: %+v, want 3 hits, 1 miss", st)
	}
	if st.Entries != 2 || st.Capacity < 128 || st.Shards < 1 {
		t.Fatalf("shape: %+v", st)
	}
	// Overwriting updates in place.
	c.Put(1, 2, chl.Answer{Dist: 9, Hub: 0, Reachable: true})
	if a, _ := c.Get(1, 2); a.Dist != 9 {
		t.Fatalf("overwrite ignored: %+v", a)
	}
}

func TestCacheDisabled(t *testing.T) {
	if c := chl.NewCache(0); c != nil {
		t.Fatal("NewCache(0) should be nil (disabled)")
	}
	var c *chl.Cache
	if st := c.Stats(); st != (chl.CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

// A single-shard cache evicts in LRU order once full.
func TestCacheEvictsLRU(t *testing.T) {
	c := chl.NewCache(3) // capacity < shard count collapses to one shard
	c.Put(0, 1, chl.Answer{Dist: 1, Reachable: true})
	c.Put(0, 2, chl.Answer{Dist: 2, Reachable: true})
	c.Put(0, 3, chl.Answer{Dist: 3, Reachable: true})
	c.Get(0, 1) // promote (0,1): (0,2) is now least recent
	c.Put(0, 4, chl.Answer{Dist: 4, Reachable: true})
	if _, hit := c.Get(0, 2); hit {
		t.Fatal("LRU entry (0,2) survived eviction")
	}
	for _, v := range []int{1, 3, 4} {
		if _, hit := c.Get(0, v); !hit {
			t.Fatalf("recently used entry (0,%d) evicted", v)
		}
	}
	if n := c.Len(); n != 3 {
		t.Fatalf("Len() = %d after eviction, want 3", n)
	}
}

// Hammer one cache from many goroutines; the race detector does the
// asserting, the final check just ensures bounds held.
func TestCacheConcurrent(t *testing.T) {
	c := chl.NewCache(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				u, v := (w*i)%97, (i*31)%89
				if a, hit := c.Get(u, v); hit {
					if want := float64(pairWant(u, v)); a.Dist != want {
						t.Errorf("Get(%d,%d) = %v, want %v", u, v, a.Dist, want)
					}
					continue
				}
				c.Put(u, v, chl.Answer{Dist: float64(pairWant(u, v)), Reachable: true})
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("cache overflowed: %d entries, capacity %d", st.Entries, st.Capacity)
	}
	if st.Hits+st.Misses != 8*2000 {
		t.Fatalf("counters lost operations: %d hits + %d misses != %d", st.Hits, st.Misses, 8*2000)
	}
}

// pairWant derives a deterministic distance from an unordered pair, so
// concurrent writers racing on the same key always store the same value.
func pairWant(u, v int) int {
	if u > v {
		u, v = v, u
	}
	return u*1000 + v
}

package chl_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	chl "repro"
	"repro/internal/sssp"
)

func TestBuildAllAlgorithmsAnswerExactly(t *testing.T) {
	g := chl.GenerateScaleFree(120, 3, 1)
	ord := chl.RankByDegree(g)
	rng := rand.New(rand.NewSource(5))
	type q struct {
		u, v int
		want float64
	}
	var queries []q
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(120), rng.Intn(120)
		queries = append(queries, q{u, v, sssp.Dijkstra(g, u)[v]})
	}
	for _, algo := range chl.Algorithms() {
		opt := chl.Options{Algorithm: algo, Order: ord, Workers: 2}
		if algo.Distributed() {
			opt.Nodes = 3
		}
		ix, err := chl.Build(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for _, qq := range queries {
			if got := ix.Query(qq.u, qq.v); got != qq.want {
				t.Fatalf("%s: query(%d,%d) = %v, want %v", algo, qq.u, qq.v, got, qq.want)
			}
		}
	}
}

func TestCanonicalALSIdenticalAcrossCHLAlgorithms(t *testing.T) {
	g := chl.GenerateRoadGrid(9, 9, 2)
	ord := chl.RankByBetweenness(g, 16, 1)
	var als float64
	for _, algo := range chl.Algorithms() {
		if !algo.Canonical() {
			continue
		}
		opt := chl.Options{Algorithm: algo, Order: ord, Nodes: 2}
		ix, err := chl.Build(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		st := ix.Stats()
		if als == 0 {
			als = st.ALS
		} else if st.ALS != als {
			t.Fatalf("%s ALS %v differs from canonical %v", algo, st.ALS, als)
		}
	}
	// The non-canonical baselines must not be smaller.
	sp, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoSParaPLL, Order: ord, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Stats().ALS < als {
		t.Fatalf("SparaPLL ALS %v below canonical %v", sp.Stats().ALS, als)
	}
}

func TestQueryHubIsOnShortestPath(t *testing.T) {
	g := chl.GenerateRoadGrid(7, 7, 3)
	ix, err := chl.Build(g, chl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		u, v := rng.Intn(49), rng.Intn(49)
		d, hub, ok := ix.QueryHub(u, v)
		if !ok {
			t.Fatalf("connected pair (%d,%d) reported no hub", u, v)
		}
		du := sssp.Dijkstra(g, u)
		dh := sssp.Dijkstra(g, hub)
		if du[hub]+dh[v] != d || d != du[v] {
			t.Fatalf("hub %d not on a shortest %d–%d path", hub, u, v)
		}
	}
}

func TestLabelsAccessor(t *testing.T) {
	g := chl.GenerateScaleFree(60, 3, 2)
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoSeqPLL})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 60; v++ {
		ls := ix.Labels(v)
		if len(ls) == 0 {
			t.Fatalf("vertex %d has no labels", v)
		}
		foundSelf := false
		prevRank := -1
		for _, l := range ls {
			if l.Hub == v {
				foundSelf = true
				if l.Dist != 0 {
					t.Fatalf("self label dist %v", l.Dist)
				}
			}
			r := ix.Rank(l.Hub)
			if r <= prevRank {
				t.Fatalf("labels of %d not ordered by rank", v)
			}
			prevRank = r
		}
		if !foundSelf {
			t.Fatalf("vertex %d missing self label", v)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := chl.GenerateScaleFree(80, 3, 4)
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := chl.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(80), rng.Intn(80)
		if ix.Query(u, v) != back.Query(u, v) {
			t.Fatalf("loaded index disagrees at (%d,%d)", u, v)
		}
	}
	if back.Stats().TotalLabels != ix.Stats().TotalLabels {
		t.Fatal("label counts differ after round trip")
	}
}

func TestDirectedBuildAndSaveLoad(t *testing.T) {
	g := chl.GenerateRandomDirected(60, 200, 8, 3)
	for _, algo := range []chl.Algorithm{chl.AlgoSeqPLL, chl.AlgoPLaNT} {
		ix, err := chl.Build(g, chl.Options{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		if !ix.Directed() {
			t.Fatal("directed flag lost")
		}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 150; i++ {
			u, v := rng.Intn(60), rng.Intn(60)
			want := sssp.Dijkstra(g, u)[v]
			if got := ix.Query(u, v); got != want {
				t.Fatalf("%s: directed query(%d→%d) = %v, want %v", algo, u, v, got, want)
			}
		}
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := chl.Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Query(1, 2) != ix.Query(1, 2) || !back.Directed() {
			t.Fatal("directed round trip broken")
		}
	}
	// Unsupported algorithm on directed input errors cleanly.
	if _, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL}); err == nil {
		t.Fatal("GLL accepted a directed graph")
	}
}

func TestQueryEngines(t *testing.T) {
	g := chl.GenerateScaleFree(100, 3, 5)
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoHybrid, Nodes: 6})
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]chl.QueryPair, 100)
	rng := rand.New(rand.NewSource(6))
	for i := range pairs {
		pairs[i] = chl.QueryPair{U: rng.Intn(100), V: rng.Intn(100)}
	}
	for _, mode := range []chl.QueryMode{chl.ModeQLSN, chl.ModeQFDL, chl.ModeQDOL} {
		qe, err := chl.NewQueryEngine(ix, mode, 6)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		br := qe.Batch(pairs)
		for i, p := range pairs {
			if br.Dists[i] != ix.Query(p.U, p.V) {
				t.Fatalf("%s: batch query %d wrong", mode, i)
			}
		}
		if len(qe.MemoryPerNode()) != 6 {
			t.Fatalf("%s: memory vector size", mode)
		}
	}
	// QFDL on a shared-memory build must fail (no partitions).
	shared, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chl.NewQueryEngine(shared, chl.ModeQFDL, 6); err == nil {
		t.Fatal("QFDL accepted a shared-memory index")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := chl.Build(nil, chl.Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := chl.GenerateScaleFree(20, 2, 1)
	if _, err := chl.Build(g, chl.Options{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	bad := chl.RankIdentity(5)
	if _, err := chl.Build(g, chl.Options{Order: bad}); err == nil {
		t.Fatal("mismatched order accepted")
	}
}

func TestMemoryLimitSurfacesOOM(t *testing.T) {
	g := chl.GenerateScaleFree(150, 4, 7)
	_, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoDParaPLL, Nodes: 4, MemoryLimitBytes: 1024})
	if !errors.Is(err, chl.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestCustomRandomOrderStillExact(t *testing.T) {
	// The CHL is defined for ANY hierarchy: an adversarial random order
	// must still answer exactly.
	g := chl.GenerateRoadGrid(6, 6, 8)
	ord := chl.RankRandom(36, 99)
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoLCC, Order: ord})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 36; u++ {
		du := sssp.Dijkstra(g, u)
		for v := 0; v < 36; v++ {
			if ix.Query(u, v) != du[v] {
				t.Fatalf("query(%d,%d) wrong under random order", u, v)
			}
		}
	}
}

func TestRankAccessors(t *testing.T) {
	g := chl.GenerateScaleFree(30, 2, 1)
	ord := chl.RankByDegree(g)
	ix, err := chl.Build(g, chl.Options{Order: ord})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 30; r++ {
		if ix.Rank(ix.VertexAtRank(r)) != r {
			t.Fatalf("rank accessors inconsistent at %d", r)
		}
	}
	if ix.VertexAtRank(0) != ord.Perm[0] {
		t.Fatal("top-ranked vertex mismatch")
	}
}

package chl_test

// Tests for the dynamic-update subsystem (delta overlay, /update,
// /compact, journals) and the bugfix sweep that rode along with it:
// /knn freshness across hot reloads, the router /matrix mid-stream
// death contract, and compaction under live traffic. The parity
// matrix's patched pass (parity_test.go) covers the twelve-cell
// correctness grid; these tests cover the lifecycle edges around it.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	chl "repro"
)

// saveFrozen builds and saves an index for g under dir, returning the
// file path.
func saveFrozen(t *testing.T, g *chl.Graph, dir, name string) string {
	t.Helper()
	_, fx := buildFrozen(t, g)
	path := filepath.Join(dir, name)
	if err := fx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestKNNFreshAfterReload pins the /knn ↔ /reload interaction: the
// inverted-index transpose behind /knn is built lazily (sync.Once) per
// flat index, and /knn seeds the answer cache with complete pair
// answers. A hot swap must retire both — a /knn served after /reload
// must rank by the new file's labels, and its cache deposits must not
// leak pre-swap answers into post-swap /dist. The audit found the
// per-snapshot ownership already correct (each snapshot carries its own
// FlatIndex and Cache, so transpose and deposits retire with it); this
// test keeps it that way.
func TestKNNFreshAfterReload(t *testing.T) {
	dir := t.TempDir()
	gA := chl.GenerateRandom(160, 500, 9, 21)
	gB := chl.GenerateRandom(160, 500, 9, 22) // same n, different edges
	pathA := saveFrozen(t, gA, dir, "a.flat")
	pathB := saveFrozen(t, gB, dir, "b.flat")

	s, err := chl.NewServer(pathA, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	n := gA.NumVertices()
	sources := []int{0, 31, 77, n - 1}
	oA, oB := newParityOracle(gA), newParityOracle(gB)

	// Warm the lazy transpose and the answer cache on file A.
	checkKNNParity(t, ts.URL, oA, n, sources, []int{3, 8})

	// Hot swap to file B: same vertex count, different edges, so every
	// stale A answer is detectably wrong.
	resp, err := http.Post(ts.URL+"/reload?path="+pathB, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /reload: status %d", resp.StatusCode)
	}

	// The regression surface: a /knn ranked by A's transpose, or a /dist
	// served from A's cache deposits, fails the B oracle.
	checkKNNParity(t, ts.URL, oB, n, sources, []int{3, 8})

	// Reloads racing /knn traffic: every response is well-formed and the
	// final state answers from the last-loaded file.
	var wrong atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				u := rng.Intn(n)
				resp, err := http.Get(fmt.Sprintf("%s/knn?u=%d&k=5", ts.URL, u))
				if err != nil {
					wrong.Add(1)
					continue
				}
				var r knnParityResp
				err = json.NewDecoder(resp.Body).Decode(&r)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					wrong.Add(1)
				}
			}
		}(int64(w))
	}
	paths := []string{pathA, pathB}
	for i := 0; i < 10; i++ {
		if _, err := s.Reload(paths[i%2]); err != nil {
			t.Errorf("reload %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if wrong.Load() != 0 {
		t.Fatalf("%d /knn requests dropped or malformed during reloads", wrong.Load())
	}
	// 10 reloads starting from A: the live file is B again.
	checkKNNParity(t, ts.URL, oB, n, sources, []int{3, 8})
}

// TestRouterMatrixMidStreamShardDeath pins the router's /matrix
// streaming error contract: when the shard owning some targets dies
// after rows have been streamed (status line long gone, every replica
// down), the stream must end with a terminal {"error": ...} NDJSON line
// — not hang, not trail off mid-stream as if complete. The audit found
// handleMatrix already emits the terminal line; this test keeps it
// that way.
func TestRouterMatrixMidStreamShardDeath(t *testing.T) {
	g := chl.GenerateRandom(240, 400, 9, 3)
	_, fx := buildFrozen(t, g)
	c := startReplicatedCluster(t, fx, 2, 1, 1<<12, nil)
	defer c.close()
	ts := httptest.NewServer(c.router.Handler())
	defer ts.Close()

	n := fx.NumVertices()
	byOwner := verticesByOwner(c.part, n)
	if len(byOwner[0]) < 2 || len(byOwner[1]) < 2 {
		t.Fatalf("degenerate partition: %d/%d vertices", len(byOwner[0]), len(byOwner[1]))
	}
	// Two sources and targets on both shards: every row fans a
	// /shardscan to each shard. Shard 0's only replica serves exactly
	// one scan — source 1's row — then dies, so source 2's row fails
	// with all of shard 0's replicas down.
	sources := []int{byOwner[1][0], byOwner[1][1]}
	targets := []int{byOwner[0][0], byOwner[0][1], byOwner[1][0], byOwner[1][1]}
	orig := *c.flaky[0][0].inner.Load()
	var scans atomic.Int32
	var oneScan http.Handler = http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.HasSuffix(req.URL.Path, "/shardscan") && scans.Add(1) > 1 {
			panic(http.ErrAbortHandler) // connection severed, like a dead process
		}
		orig.ServeHTTP(w, req)
	})
	c.flaky[0][0].inner.Store(&oneScan)

	body, _ := json.Marshal(map[string]any{"sources": sources, "targets": targets})
	resp, err := http.Post(ts.URL+"/matrix", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /matrix: status %d before the stream began", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []map[string]any
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("undecodable stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	// Exactly: header, source 1's row, terminal error line.
	if len(lines) != 3 {
		t.Fatalf("stream has %d lines, want header + 1 row + terminal error: %v", len(lines), lines)
	}
	if _, ok := lines[0]["targets"]; !ok {
		t.Fatalf("first line is not the header: %v", lines[0])
	}
	if u, ok := lines[1]["u"].(float64); !ok || int(u) != sources[0] {
		t.Fatalf("second line is not source %d's row: %v", sources[0], lines[1])
	}
	errMsg, ok := lines[2]["error"].(string)
	if !ok || errMsg == "" {
		t.Fatalf("stream did not terminate with an error line: %v", lines[2])
	}
	if _, hasRow := lines[2]["u"]; hasRow {
		t.Fatalf("terminal error line carries row fields: %v", lines[2])
	}
}

// TestServerCompactionUnderLoad is the tentpole's lifecycle soak on the
// flat server: apply patches over HTTP, hammer /dist and /knn from
// concurrent clients, recompact into a fresh snapshot mid-load — zero
// dropped queries — and verify the post-compaction answers equal a
// from-scratch rebuild over the patched graph (strict ==, float32-exact
// weights). Run with -race in CI.
func TestServerCompactionUnderLoad(t *testing.T) {
	dir := t.TempDir()
	g := chl.GenerateRandom(200, 600, 9, 5)
	path := saveFrozen(t, g, dir, "base.flat")
	journal := filepath.Join(dir, "updates.journal")

	s, err := chl.NewServer(path, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.EnableUpdates(g, journal); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	n := g.NumVertices()
	ops := parityPatchOps(g)
	half := len(ops) / 2
	if half == 0 {
		half = len(ops)
	}

	// First patch batch lands before the load starts.
	postUpdate(t, ts.URL, ops[:half])

	var drops atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var url string
				if rng.Intn(2) == 0 {
					url = fmt.Sprintf("%s/dist?u=%d&v=%d", ts.URL, rng.Intn(n), rng.Intn(n))
				} else {
					url = fmt.Sprintf("%s/knn?u=%d&k=5", ts.URL, rng.Intn(n))
				}
				resp, err := http.Get(url)
				if err != nil {
					drops.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					drops.Add(1)
				}
			}
		}(int64(w))
	}

	// Mid-load: the second patch batch, then recompaction in place.
	if len(ops) > half {
		postUpdate(t, ts.URL, ops[half:])
	}
	resp, err := http.Post(ts.URL+"/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /compact: status %d", resp.StatusCode)
	}
	close(stop)
	wg.Wait()
	if drops.Load() != 0 {
		t.Fatalf("%d queries dropped across the update/compact lifecycle", drops.Load())
	}

	// The compacted snapshot serves label answers again (no overlay),
	// equal to a from-scratch rebuild over the patched graph.
	st := s.Stats()
	if st.Patch != nil {
		t.Fatalf("overlay still outstanding after compaction: %+v", st.Patch)
	}
	if st.Compactions != 1 || st.Updates != 2 {
		t.Fatalf("lifecycle counters: compactions=%d updates=%d, want 1 and 2", st.Compactions, st.Updates)
	}
	patched, err := chl.ApplyPatch(g, ops)
	if err != nil {
		t.Fatal(err)
	}
	_, rebuilt := buildFrozen(t, patched)
	for i := 0; i < 300; i++ {
		u, v := (i*37)%n, (i*101+13)%n
		want := rebuilt.Query(u, v)
		if got := s.Query(u, v); got != want {
			t.Fatalf("post-compaction d(%d,%d) = %v, from-scratch rebuild says %v", u, v, got, want)
		}
	}
	// Compaction folded the journal into the index file: empty replay.
	s2, err := chl.NewServer(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.EnableUpdates(patched, journal); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Patch != nil {
		t.Fatalf("journal not truncated by compaction: replay produced %+v", st.Patch)
	}
}

// TestUpdateJournalReplay pins the journal's durability contract on
// both serving tiers: a restart (a fresh Server over the same index
// file, a fresh Router over the same cluster) with the same journal
// replays the accepted batches and answers exactly as the process that
// accepted them — the patched-graph oracle, strict ==.
func TestUpdateJournalReplay(t *testing.T) {
	dir := t.TempDir()
	g := chl.GenerateRandom(180, 520, 9, 11)
	path := saveFrozen(t, g, dir, "base.flat")
	ops := parityPatchOps(g)
	patched, err := chl.ApplyPatch(g, ops)
	if err != nil {
		t.Fatal(err)
	}
	po := newParityOracle(patched)
	n := g.NumVertices()
	var pairs [][2]int
	for i := 0; i < 30; i++ {
		pairs = append(pairs, [2]int{(i * 41) % n, (i*89 + 7) % n})
	}

	t.Run("server", func(t *testing.T) {
		journal := filepath.Join(dir, "server.journal")
		s1, err := chl.NewServer(path, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		if err := s1.EnableUpdates(g, journal); err != nil {
			t.Fatal(err)
		}
		// Two batches: replay must accumulate, not just take the last.
		if _, err := s1.Update(ops[:1]); err != nil {
			t.Fatal(err)
		}
		if _, err := s1.Update(ops[1:]); err != nil {
			t.Fatal(err)
		}
		s1.Close()

		s2, err := chl.NewServer(path, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if err := s2.EnableUpdates(g, journal); err != nil {
			t.Fatal(err)
		}
		st := s2.Stats()
		if st.Patch == nil || int(st.Patch.Ops) != len(ops) {
			t.Fatalf("replay state %+v, want %d accumulated ops", st.Patch, len(ops))
		}
		for _, p := range pairs {
			if got, want := s2.Query(p[0], p[1]), po.from(p[0])[p[1]]; got != want {
				t.Fatalf("replayed d(%d,%d) = %v, patched oracle says %v", p[0], p[1], got, want)
			}
		}
	})

	t.Run("router", func(t *testing.T) {
		journal := filepath.Join(dir, "router.journal")
		_, fx := buildFrozen(t, g)
		c := newTestCluster(t, fx, clusterSpec{shards: 3, cacheSize: 1 << 10, tweak: func(cfg *chl.RouterConfig) {
			cfg.BaseGraph = g
			cfg.UpdateJournal = journal
		}})
		defer c.close()
		ts := httptest.NewServer(c.router.Handler())
		defer ts.Close()
		postUpdate(t, ts.URL, ops)

		// A second router over the same journal and live backends: its
		// first query triggers the lazy replay.
		groups := make([][]string, len(c.backends))
		for sid, reps := range c.backends {
			for _, b := range reps {
				groups[sid] = append(groups[sid], b.URL)
			}
		}
		r2, err := chl.NewRouter(chl.RouterConfig{
			Manifest: c.manifest, ReplicaAddrs: groups, CacheSize: 1 << 10,
			BaseGraph: g, UpdateJournal: journal,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			got, err := r2.Query(p[0], p[1])
			if err != nil {
				t.Fatalf("replayed router query (%d,%d): %v", p[0], p[1], err)
			}
			if want := po.from(p[0])[p[1]]; got != want {
				t.Fatalf("replayed router d(%d,%d) = %v, patched oracle says %v", p[0], p[1], got, want)
			}
		}
		if st := c.router.Stats(); st.Patch == nil || int(st.Patch.Ops) != len(ops) {
			t.Fatalf("first router patch state %+v, want %d ops", st.Patch, len(ops))
		}
		if st := r2.Stats(); st.Patch == nil || int(st.Patch.Ops) != len(ops) {
			t.Fatalf("replayed router patch state %+v, want %d ops", st.Patch, len(ops))
		}
	})
}

// postRaw POSTs body to url and returns the status code.
func postRaw(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// getStatus GETs url and returns the status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestUpdateEndpointGuards sweeps the /update and /compact rejection
// contract on every tier: 405 for the wrong method, 400 for garbage,
// empty, or invalid patches, 409 when updates were never enabled, 413
// past the body cap, and 421 from a shard server (the router owns the
// cluster's overlay).
func TestUpdateEndpointGuards(t *testing.T) {
	g := chl.GenerateRandom(120, 320, 9, 13)
	_, fx := buildFrozen(t, g)

	t.Run("server", func(t *testing.T) {
		cold := chl.NewServerFromFlat(fx, 0) // EnableUpdates never called
		defer cold.Close()
		coldTS := httptest.NewServer(cold.Handler())
		defer coldTS.Close()
		if got := postRaw(t, coldTS.URL+"/update", "add 0 1 2"); got != http.StatusConflict {
			t.Fatalf("/update without EnableUpdates: status %d, want 409", got)
		}
		if got := postRaw(t, coldTS.URL+"/compact", ""); got != http.StatusConflict {
			t.Fatalf("/compact without EnableUpdates: status %d, want 409", got)
		}

		s := chl.NewServerFromFlat(fx, 0)
		defer s.Close()
		if err := s.EnableUpdates(g, ""); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		for name, want := range map[string]struct {
			body string
			code int
		}{
			"garbage":             {"not a patch log", http.StatusBadRequest},
			"empty":               {"# comments only\n", http.StatusBadRequest},
			"out-of-range vertex": {"add 0 99999 2", http.StatusBadRequest},
			"oversized":           {strings.Repeat("# padding line\n", 1<<20), http.StatusRequestEntityTooLarge},
		} {
			if got := postRaw(t, ts.URL+"/update", want.body); got != want.code {
				t.Fatalf("/update %s: status %d, want %d", name, got, want.code)
			}
		}
		if got := getStatus(t, ts.URL+"/update"); got != http.StatusMethodNotAllowed {
			t.Fatalf("GET /update: status %d, want 405", got)
		}
		if got := getStatus(t, ts.URL+"/compact"); got != http.StatusMethodNotAllowed {
			t.Fatalf("GET /compact: status %d, want 405", got)
		}
		if got := postRaw(t, ts.URL+"/compact", "{broken json"); got != http.StatusBadRequest {
			t.Fatalf("/compact with a broken body: status %d, want 400", got)
		}
		if got := postRaw(t, ts.URL+"/compact", ""); got != http.StatusBadRequest {
			t.Fatalf("/compact with no outstanding patches: status %d, want 400", got)
		}
	})

	t.Run("cluster", func(t *testing.T) {
		frozen := newTestCluster(t, fx, clusterSpec{shards: 2, cacheSize: 1 << 8})
		defer frozen.close()
		// Shard processes serve frozen slices: updates are misdirected.
		if got := postRaw(t, frozen.backends[0][0].URL+"/update", "add 0 1 2"); got != http.StatusMisdirectedRequest {
			t.Fatalf("/update on a shard server: status %d, want 421", got)
		}
		// A router without BaseGraph never enabled updates.
		frozenTS := httptest.NewServer(frozen.router.Handler())
		defer frozenTS.Close()
		if got := postRaw(t, frozenTS.URL+"/update", "add 0 1 2"); got != http.StatusConflict {
			t.Fatalf("/update on a router without -graph: status %d, want 409", got)
		}

		live := newTestCluster(t, fx, clusterSpec{shards: 2, cacheSize: 1 << 8, tweak: func(cfg *chl.RouterConfig) {
			cfg.BaseGraph = g
		}})
		defer live.close()
		ts := httptest.NewServer(live.router.Handler())
		defer ts.Close()
		for name, want := range map[string]struct {
			body string
			code int
		}{
			"garbage":             {"del", http.StatusBadRequest},
			"empty":               {"\n\n", http.StatusBadRequest},
			"out-of-range vertex": {"add 0 99999 2", http.StatusBadRequest},
		} {
			if got := postRaw(t, ts.URL+"/update", want.body); got != want.code {
				t.Fatalf("router /update %s: status %d, want %d", name, got, want.code)
			}
		}
		if got := getStatus(t, ts.URL+"/update"); got != http.StatusMethodNotAllowed {
			t.Fatalf("router GET /update: status %d, want 405", got)
		}
	})
}

package chl

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/delta"
	"repro/internal/label"
	"repro/internal/query"
)

// FlatIndex is a frozen, serving-oriented view of an Index: all labels
// packed into two contiguous arrays (CSR offsets + (hub uint32, dist
// float32) entries, hub-sorted per vertex) plus the rank permutation, so
// queries on original vertex ids run as straight-line merge-joins over
// sequential memory. A FlatIndex is immutable, safe for concurrent
// readers, and is the unit the binary serving format (SaveFlat/LoadFlat)
// persists — build once with Build, freeze, save, then serve many times
// without rebuilding.
//
// A frozen directed index carries both label halves: forward runs (hubs
// reachable from v) and backward runs (hubs that reach v). A directed
// query u→v hub-joins forward(u) with backward(v) using the same packed
// kernels; Query(u, v) and Query(v, u) are then different questions with
// independently exact answers.
//
// Distances are packed as float32: exact for the integer edge weights of
// every generated dataset and DIMACS graph, approximate beyond ~7
// significant digits otherwise.
type FlatIndex struct {
	// flat holds the packed runs in ORIGINAL-id order (freezing applies
	// the permutation once), so the serving path needs no per-query rank
	// translation; hub ids inside the entries stay in rank space, which
	// is all the merge- and hash-joins compare. For directed indexes it
	// holds the forward runs.
	flat *label.FlatIndex
	// bwd holds the backward runs of a directed index (same vertex
	// space and ordering as flat); nil for undirected indexes.
	bwd *label.FlatIndex
	// cflat/cbwd are the compressed (CHFX v4) siblings of flat/bwd: an
	// index is either fixed-width (flat non-nil) or compressed (cflat
	// non-nil), never both. Compressed queries go through
	// label.JoinCompressed, which skips non-overlapping label blocks via
	// their (minHub, maxHub) headers; everything else — permutation,
	// directedness, serving tiers — is format-independent.
	cflat *label.CompressedIndex
	cbwd  *label.CompressedIndex
	perm  []int // rank -> original id, for reporting witness hubs

	// Set by LoadFlatMapped: the arrays alias a memory-mapped file that
	// close releases. Heap-backed indexes leave both zero.
	close  func() error
	mapped bool

	// inv memoizes the label-inverted index (hub → carrying vertices,
	// distance-sorted) that the /knn workload joins against. It is
	// derived from the target-side (backward) store on first use —
	// never serialized, so the pinned CHFX formats are untouched — and
	// inverting a per-shard slice automatically yields the shard's
	// slice of it (empty runs invert to no postings).
	invOnce sync.Once
	inv     *label.Inverted
}

// inverted returns the index's label-inverted half, building it on
// first use (concurrency-safe; subsequent calls are a pointer read).
func (fx *FlatIndex) inverted() *label.Inverted {
	fx.invOnce.Do(func() {
		if fx.cflat != nil {
			fx.inv = label.InvertCompressed(fx.cbackward())
		} else {
			fx.inv = label.Invert(fx.backward())
		}
	})
	return fx.inv
}

// Directed reports whether the index holds directed (forward + backward)
// label runs.
func (fx *FlatIndex) Directed() bool { return fx.bwd != nil || fx.cbwd != nil }

// Compressed reports whether the index stores its labels as compressed
// blocks (CHFX v4) rather than fixed-width packed entries.
func (fx *FlatIndex) Compressed() bool { return fx.cflat != nil }

// backward returns the store the backward run of a vertex comes from:
// the backward half for directed indexes, the single (symmetric) store
// for undirected ones.
func (fx *FlatIndex) backward() *label.FlatIndex {
	if fx.bwd != nil {
		return fx.bwd
	}
	return fx.flat
}

// cbackward is backward for a compressed index.
func (fx *FlatIndex) cbackward() *label.CompressedIndex {
	if fx.cbwd != nil {
		return fx.cbwd
	}
	return fx.cflat
}

// labelCount returns the number of forward labels of v in either format —
// the shard ownership audit walks this over every vertex.
func (fx *FlatIndex) labelCount(v int) int {
	if fx.cflat != nil {
		return fx.cflat.LabelCount(v)
	}
	return fx.flat.LabelCount(v)
}

// backwardLabelCount is labelCount for the backward half of a directed
// index.
func (fx *FlatIndex) backwardLabelCount(v int) int {
	if fx.cbwd != nil {
		return fx.cbwd.LabelCount(v)
	}
	return fx.bwd.LabelCount(v)
}

// forwardRun returns the forward packed run of v in the fixed-width wire
// layout regardless of the index's storage format: zero-copy from a
// fixed-width store, materialized (decoded) from a compressed one. The
// /shardquery protocol ships these rows, so routed answers are
// byte-identical whichever format each shard serves.
func (fx *FlatIndex) forwardRun(v int) []uint64 {
	if fx.cflat != nil {
		return fx.cflat.AppendPackedRun(nil, v)
	}
	return fx.flat.PackedRun(v)
}

// backwardRun is forwardRun for the backward half (the forward store for
// undirected indexes).
func (fx *FlatIndex) backwardRun(v int) []uint64 {
	if fx.cflat != nil {
		return fx.cbackward().AppendPackedRun(nil, v)
	}
	return fx.backward().PackedRun(v)
}

// Compress returns a compressed (CHFX v4) copy of the index: the same
// labels, permutation and directedness, with the label arrays re-encoded
// as delta+varint blocks (label.CompressBlocks). Saving the result writes
// a version-4 file; the original index is untouched, so v2/v3 outputs
// stay byte-identical.
func (fx *FlatIndex) Compress() (*FlatIndex, error) {
	if fx.cflat != nil {
		return fx, nil
	}
	out := &FlatIndex{perm: append([]int(nil), fx.perm...)}
	var err error
	if out.cflat, err = label.Compress(fx.flat); err != nil {
		return nil, err
	}
	if fx.bwd != nil {
		if out.cbwd, err = label.Compress(fx.bwd); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Decompress returns a fixed-width copy of a compressed index (the
// inverse of Compress, with identical labels); on a fixed-width index it
// returns the index itself.
func (fx *FlatIndex) Decompress() *FlatIndex {
	if fx.cflat == nil {
		return fx
	}
	out := &FlatIndex{
		flat: fx.cflat.Decompress(),
		perm: append([]int(nil), fx.perm...),
	}
	if fx.cbwd != nil {
		out.bwd = fx.cbwd.Decompress()
	}
	return out
}

// Mapped reports whether the index serves zero-copy from a memory-mapped
// file (LoadFlatMapped / OpenFlat) rather than from heap arrays.
func (fx *FlatIndex) Mapped() bool { return fx.mapped }

// Prefault touches every page of a mapped index's label arrays so the
// kernel faults the file in before the first query, returning the number
// of pages walked (0 for heap-backed indexes, which are always resident).
// Server.SetPrefault runs this on reloads before the hot swap.
func (fx *FlatIndex) Prefault() int {
	if fx.cflat != nil {
		return fx.cflat.Prefault()
	}
	return fx.flat.Prefault()
}

// Close releases the file mapping of a mapped index; the index must not
// be queried afterwards. On heap-backed indexes Close is a no-op. It is
// idempotent but not concurrency-safe against in-flight queries — the
// snapshot layer (Server) ref-counts to close only after the last query
// drains.
func (fx *FlatIndex) Close() error {
	if fx.close == nil {
		return nil
	}
	c := fx.close
	fx.close = nil
	return c()
}

// Freeze packs the index into its flat serving form. A directed index
// freezes both label halves (forward and backward runs per vertex); the
// resulting FlatIndex answers the same ordered queries the in-memory
// index does.
func (ix *Index) Freeze() (*FlatIndex, error) {
	if ix.directed != nil {
		fwd := label.NewIndex(ix.n)
		bwd := label.NewIndex(ix.n)
		for v := 0; v < ix.n; v++ {
			fwd.SetLabels(v, ix.directed.Forward.Labels(ix.rank[v])) // aliases, read-only
			bwd.SetLabels(v, ix.directed.Backward.Labels(ix.rank[v]))
		}
		return &FlatIndex{
			flat: label.Freeze(fwd),
			bwd:  label.Freeze(bwd),
			perm: append([]int(nil), ix.perm...),
		}, nil
	}
	reordered := label.NewIndex(ix.n)
	for v := 0; v < ix.n; v++ {
		reordered.SetLabels(v, ix.ranked.Labels(ix.rank[v])) // aliases, read-only
	}
	return &FlatIndex{
		flat: label.Freeze(reordered),
		perm: append([]int(nil), ix.perm...),
	}, nil
}

// FreezeCompressed is Freeze followed by Compress: the index packed
// straight into compressed label blocks, ready to save as a CHFX v4 file
// or serve through the block-skipping kernel.
func (ix *Index) FreezeCompressed() (*FlatIndex, error) {
	fx, err := ix.Freeze()
	if err != nil {
		return nil, err
	}
	return fx.Compress()
}

// NumVertices returns the number of vertices the index covers.
func (fx *FlatIndex) NumVertices() int {
	if fx.cflat != nil {
		return fx.cflat.NumVertices()
	}
	return fx.flat.NumVertices()
}

// TotalLabels returns the packed label count (both halves for directed
// indexes).
func (fx *FlatIndex) TotalLabels() int64 {
	if fx.cflat != nil {
		t := fx.cflat.NumLabels()
		if fx.cbwd != nil {
			t += fx.cbwd.NumLabels()
		}
		return t
	}
	t := fx.flat.NumLabels()
	if fx.bwd != nil {
		t += fx.bwd.NumLabels()
	}
	return t
}

// TotalMemory returns the byte footprint of the label arrays (8 bytes per
// label + 4 per vertex for the fixed-width format; the encoded block
// bytes plus headers for a compressed index).
func (fx *FlatIndex) TotalMemory() int64 {
	if fx.cflat != nil {
		t := fx.cflat.TotalMemory()
		if fx.cbwd != nil {
			t += fx.cbwd.TotalMemory()
		}
		return t
	}
	t := fx.flat.TotalMemory()
	if fx.bwd != nil {
		t += fx.bwd.TotalMemory()
	}
	return t
}

// Query returns the exact shortest-path distance between original vertex
// ids u and v (the u→v distance on directed indexes), or Infinity if
// unreachable.
func (fx *FlatIndex) Query(u, v int) float64 {
	if fx.cflat != nil {
		d, _, _ := label.JoinCompressed(fx.cflat.Run(u), fx.cbackward().Run(v))
		return d
	}
	if fx.bwd != nil {
		d, _, _ := label.JoinPacked(fx.flat.PackedRun(u), fx.bwd.PackedRun(v))
		return d
	}
	return fx.flat.Query(u, v)
}

// QueryHub additionally reports the witness hub (as an original id).
func (fx *FlatIndex) QueryHub(u, v int) (dist float64, hub int, ok bool) {
	var h uint32
	if fx.cflat != nil {
		dist, h, ok = label.JoinCompressed(fx.cflat.Run(u), fx.cbackward().Run(v))
	} else if fx.bwd != nil {
		dist, h, ok = label.JoinPacked(fx.flat.PackedRun(u), fx.bwd.PackedRun(v))
	} else {
		dist, h, ok = fx.flat.QueryHub(u, v)
	}
	if !ok {
		return dist, 0, false
	}
	return dist, fx.perm[h], true
}

// QueryScratch is a per-worker probe buffer for FlatIndex.QueryWith /
// BatchEngine: 8 bytes per vertex, owned by one goroutine.
type QueryScratch = label.QueryScratch

// NewScratch allocates a probe buffer sized for this index.
func (fx *FlatIndex) NewScratch() *QueryScratch {
	return label.NewQueryScratch(fx.NumVertices())
}

// QueryWith is Query through a hash-join over the caller's scratch buffer
// instead of a merge-join — the fast path for serving loops, worth ~2× on
// indexes whose scratch stays cache-resident (see label.FlatIndex).
// Compressed indexes have no hash-join (their entries decode blockwise);
// they answer through the block-skipping merge, ignoring the scratch.
func (fx *FlatIndex) QueryWith(s *QueryScratch, u, v int) float64 {
	if fx.cflat != nil {
		d, _, _ := label.JoinCompressed(fx.cflat.Run(u), fx.cbackward().Run(v))
		return d
	}
	if fx.bwd != nil {
		d, _, _ := label.JoinPackedWith(s, fx.flat.PackedRun(u), fx.bwd.PackedRun(v))
		return d
	}
	return fx.flat.QueryWith(s, u, v)
}

// QueryHubWith is QueryWith plus the witness hub (as an original id) —
// the kernel cached engines use to fill cache entries at hash-join
// speed.
func (fx *FlatIndex) QueryHubWith(s *QueryScratch, u, v int) (dist float64, hub int, ok bool) {
	var h uint32
	if fx.cflat != nil {
		dist, h, ok = label.JoinCompressed(fx.cflat.Run(u), fx.cbackward().Run(v))
	} else if fx.bwd != nil {
		dist, h, ok = label.JoinPackedWith(s, fx.flat.PackedRun(u), fx.bwd.PackedRun(v))
	} else {
		dist, h, ok = fx.flat.QueryHubWith(s, u, v)
	}
	if !ok {
		return dist, 0, false
	}
	return dist, fx.perm[h], true
}

// Thaw unpacks the flat store back into a queryable Index (labels only —
// build metrics and per-node partitions are not part of the flat format).
// A compressed index thaws through its fixed-width expansion; either
// format thaws to the same Index.
func (fx *FlatIndex) Thaw() *Index {
	if fx.cflat != nil {
		return fx.Decompress().Thaw()
	}
	n := fx.flat.NumVertices()
	rank := make([]int, n)
	for pos, v := range fx.perm {
		rank[v] = pos
	}
	ix := &Index{
		n:    n,
		perm: append([]int(nil), fx.perm...),
		rank: rank,
	}
	if fx.bwd != nil {
		fwd, bwd := label.NewIndex(n), label.NewIndex(n)
		for v := 0; v < n; v++ {
			fwd.SetLabels(rank[v], fx.flat.Labels(v))
			bwd.SetLabels(rank[v], fx.bwd.Labels(v))
		}
		ix.directed = &label.DirectedIndex{Forward: fwd, Backward: bwd}
		return ix
	}
	ranked := label.NewIndex(n)
	for v := 0; v < n; v++ {
		ranked.SetLabels(rank[v], fx.flat.Labels(v))
	}
	ix.ranked = ranked
	return ix
}

// BatchEngine serves point-to-point shortest-distance queries from a
// FlatIndex at hardware speed: Batch fans the pairs out over a
// runtime.GOMAXPROCS-sized worker pool, each worker merge-joining its
// contiguous slice of the batch with zero allocation on the hot path.
type BatchEngine struct {
	fx      *FlatIndex
	workers int
	cache   *Cache         // nil: uncached (the default)
	ov      *delta.Overlay // nil: frozen index only (the default)
}

// NewBatchEngine freezes ix (directed or undirected) and returns a
// parallel batch serving engine over it.
func NewBatchEngine(ix *Index) (*BatchEngine, error) {
	fx, err := ix.Freeze()
	if err != nil {
		return nil, err
	}
	return NewBatchEngineFlat(fx), nil
}

// NewBatchEngineFlat wraps an already-frozen (for instance, freshly
// loaded) flat index.
func NewBatchEngineFlat(fx *FlatIndex) *BatchEngine {
	return &BatchEngine{fx: fx, workers: runtime.GOMAXPROCS(0)}
}

// Index returns the engine's underlying flat index.
func (e *BatchEngine) Index() *FlatIndex { return e.fx }

// SetCache attaches a point-to-point answer cache to the engine (nil
// detaches). Cached lookups serve repeated pairs without touching the
// label arrays; misses fall through to the join kernels and populate the
// cache with the full answer (distance + witness hub). The cache must
// only ever hold answers from this engine's index — on an index swap,
// start a fresh cache (Server does this per snapshot) — and its key
// ordering must match the index's directedness (NewDirectedCache for
// directed indexes): an unordered cache would silently serve d(v→u) for
// d(u→v), so a mismatch panics rather than corrupting answers.
func (e *BatchEngine) SetCache(c *Cache) {
	if c != nil && c.directed != e.fx.Directed() {
		panic("chl: cache key ordering does not match the engine's directedness (use NewDirectedCache for directed indexes)")
	}
	e.cache = c
}

// newCacheFor builds the answer cache matching fx's directedness — the
// constructor every serving tier funnels through so a directed index can
// never be fronted by an unordered cache.
func newCacheFor(fx *FlatIndex, capacity int) *Cache {
	return newCache(capacity, fx.Directed())
}

// Cache returns the engine's attached cache, or nil.
func (e *BatchEngine) Cache() *Cache { return e.cache }

// SetOverlay attaches a delta overlay to the engine (nil detaches).
// With an overlay attached, every query routes through the corrected
// path: the frozen join plus the overlay's patch-seeded correction
// Dijkstra, falling back to an exact patched-graph Dijkstra for the
// pairs the correction cannot certify. An attached cache must be
// scoped to exactly one (index, overlay) pair — Server and Router
// start a fresh cache on every patch batch, which is what keeps
// pre-patch answers from outliving the graph they were true of.
func (e *BatchEngine) SetOverlay(ov *delta.Overlay) {
	if ov != nil && ov.Empty() {
		ov = nil
	}
	e.ov = ov
}

// Overlay returns the engine's attached delta overlay, or nil.
func (e *BatchEngine) Overlay() *delta.Overlay { return e.ov }

// Query answers one query (original ids), through the cache when one is
// attached.
func (e *BatchEngine) Query(u, v int) float64 {
	if e.cache == nil && e.ov == nil {
		return e.fx.Query(u, v)
	}
	d, _, _ := e.QueryHub(u, v)
	return d
}

// QueryHub answers one query with its witness hub, through the cache
// when one is attached.
func (e *BatchEngine) QueryHub(u, v int) (dist float64, hub int, ok bool) {
	if e.cache != nil {
		if a, hit := e.cache.Get(u, v); hit {
			return a.Dist, a.Hub, a.Reachable
		}
	}
	if e.ov != nil {
		dist, hub, ok = e.queryHubPatched(u, v)
	} else {
		dist, hub, ok = e.fx.QueryHub(u, v)
	}
	if e.cache != nil {
		e.cache.Put(u, v, Answer{Dist: dist, Hub: hub, Reachable: ok})
	}
	return dist, hub, ok
}

// queryHubPatched answers one query against the patched graph: the
// frozen join supplies the trunk distance and the patch-vertex seeds,
// the overlay's correction Dijkstra folds the patched edges in, and
// pairs the correction cannot certify fall back to an exact Dijkstra
// on the materialized patched graph. The witness hub survives only
// when the overlay proves the frozen answer still exact (the frozen
// flag); otherwise the hub is -1 — no hub in the frozen labels is
// guaranteed to lie on a patched shortest path.
func (e *BatchEngine) queryHubPatched(u, v int) (dist float64, hub int, ok bool) {
	d0, h0, ok0 := e.fx.QueryHub(u, v)
	if !ok0 {
		d0 = Infinity
	}
	if u == v {
		d0, h0, ok0 = 0, u, true
	}
	du, dv := e.patchSeeds(u, v)
	dist, frozen, exact := e.ov.Correct(d0, du, dv)
	if !exact {
		dist = mustOverlayDist(e.ov, u, v)
		frozen = false
	}
	if dist >= Infinity {
		return Infinity, 0, false
	}
	if frozen && ok0 {
		return dist, h0, true
	}
	return dist, -1, true
}

// patchSeeds computes the frozen seed vectors for one pair against the
// overlay's patch vertices: du[i] = frozen d(u, p_i), dv[i] = frozen
// d(p_i, v), in the overlay's vertex order.
func (e *BatchEngine) patchSeeds(u, v int) (du, dv []float64) {
	verts := e.ov.Verts()
	du = make([]float64, len(verts))
	dv = make([]float64, len(verts))
	for i, p := range verts {
		du[i] = e.frozenDist(u, p)
		dv[i] = e.frozenDist(p, v)
	}
	return du, dv
}

// frozenDist is one frozen-label distance with the diagonal pinned to
// zero (a join of a vertex with itself always reports 0, but pinning
// it keeps the seed vectors independent of label contents).
func (e *BatchEngine) frozenDist(a, b int) float64 {
	if a == b {
		return 0
	}
	return e.fx.Query(a, b)
}

// mustOverlayDist is Overlay.Dist for overlays past construction: the
// patched graph was materialized (and validated) when the overlay was
// built, so a failure here means a corrupted overlay, not bad input.
func mustOverlayDist(ov *delta.Overlay, u, v int) float64 {
	d, err := ov.Dist(u, v)
	if err != nil {
		panic(fmt.Sprintf("chl: overlay epoch %d failed to answer (%d,%d) on its own patched graph: %v", ov.Epoch(), u, v, err))
	}
	return d
}

// Batch answers every pair and returns the distances in order.
func (e *BatchEngine) Batch(pairs []QueryPair) []float64 {
	dst := make([]float64, len(pairs))
	e.BatchInto(dst, pairs)
	return dst
}

// BatchInto answers every pair into dst (len(dst) must equal len(pairs)),
// reusing the caller's buffer so a serving loop allocates nothing.
func (e *BatchEngine) BatchInto(dst []float64, pairs []QueryPair) {
	if len(dst) != len(pairs) {
		panic(fmt.Sprintf("chl: BatchInto dst length %d != pairs length %d", len(dst), len(pairs)))
	}
	workers := e.workers
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		e.serveRange(dst, pairs, 0, len(pairs))
		return
	}
	chunk := (len(pairs) + workers - 1) / workers
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		lo, hi := t*chunk, (t+1)*chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			e.serveRange(dst, pairs, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// hashServeMaxVertices bounds the hash-join serving path: one scratch is 8
// bytes per vertex and random-probed, so past ~1 MiB it thrashes the cache
// and the sequential merge-join wins.
const hashServeMaxVertices = 1 << 17

// serveRange answers one worker's contiguous slice of a batch. Every
// kernel goes through the FlatIndex methods, which answer undirected
// queries on the single run store and directed ones as the forward(u) ×
// backward(v) hub join — one cache and scratch-size policy for both.
func (e *BatchEngine) serveRange(dst []float64, pairs []QueryPair, lo, hi int) {
	fx := e.fx
	if e.ov != nil {
		// Patched serving: every pair routes through the corrected
		// single-pair path (cache-aware when a cache is attached). The
		// zero-allocation kernels below join frozen labels only, so they
		// cannot see patched edges; the worker fan-out still applies.
		for i := lo; i < hi; i++ {
			d, _, _ := e.QueryHub(pairs[i].U, pairs[i].V)
			dst[i] = d
		}
		return
	}
	// Compressed indexes have one kernel (the block-skipping merge); the
	// hash-join cutoff below only applies to fixed-width stores.
	hashServe := !fx.Compressed() && fx.NumVertices() <= hashServeMaxVertices
	if e.cache != nil {
		// Cached path: each worker consults the shared sharded cache and
		// computes misses with a hub-reporting kernel, so the cache
		// always holds the complete answer (/dist can reuse a /batch
		// miss and vice versa). Misses keep the hash-join fast path
		// whenever the uncached engine would use it.
		if hashServe {
			s := label.NewQueryScratch(fx.NumVertices())
			for i := lo; i < hi; i++ {
				p := pairs[i]
				if a, hit := e.cache.Get(p.U, p.V); hit {
					dst[i] = a.Dist
					continue
				}
				d, h, ok := fx.QueryHubWith(s, p.U, p.V)
				e.cache.Put(p.U, p.V, Answer{Dist: d, Hub: h, Reachable: ok})
				dst[i] = d
			}
			return
		}
		for i := lo; i < hi; i++ {
			d, _, _ := e.QueryHub(pairs[i].U, pairs[i].V)
			dst[i] = d
		}
		return
	}
	if hashServe {
		s := label.NewQueryScratch(fx.NumVertices()) // per-worker probe buffer
		for i := lo; i < hi; i++ {
			dst[i] = fx.QueryWith(s, pairs[i].U, pairs[i].V)
		}
		return
	}
	for i := lo; i < hi; i++ {
		dst[i] = fx.Query(pairs[i].U, pairs[i].V)
	}
}

// QueryMode selects a distributed query strategy (§6 of the paper).
type QueryMode = query.Mode

// The three query modes.
const (
	// ModeQLSN replicates all labels on every node; each query is
	// answered locally by the node it emerges on. Lowest latency, highest
	// memory.
	ModeQLSN = query.QLSN
	// ModeQFDL partitions every vertex's labels across all nodes; each
	// query is broadcast and MIN-reduced. Lowest memory, broadcast-bound
	// latency.
	ModeQFDL = query.QFDL
	// ModeQDOL splits vertices into ζ partitions with C(ζ,2)=q and routes
	// each query point-to-point to the node owning its partition pair.
	// Best batch throughput at √q-scaled memory.
	ModeQDOL = query.QDOL
)

// QueryEngine answers PPSD queries on a simulated q-node cluster under one
// of the three modes, translating between original vertex ids and the
// index's rank space.
type QueryEngine struct {
	ix  *Index
	eng *query.Engine
}

// NewQueryEngine deploys the index's labels across q simulated nodes.
// ModeQFDL requires an index built by a distributed algorithm (it reuses
// the generator-node partitions); QLSN and QDOL work with any undirected
// index. Directed indexes are not supported by the simulated engines —
// they serve through the flat stack (Freeze/BatchEngine, Server, Router),
// which handles them end to end.
func NewQueryEngine(ix *Index, mode QueryMode, q int) (*QueryEngine, error) {
	if ix.directed != nil {
		return nil, fmt.Errorf("chl: the simulated query engines support undirected indexes only; directed indexes serve through Freeze/BatchEngine, Server, or Router")
	}
	var perNode []*label.Index
	if mode == ModeQFDL {
		if ix.perNode == nil {
			return nil, fmt.Errorf("chl: QFDL needs a distributed build (Options.Nodes=%d, got a shared-memory index)", q)
		}
		if len(ix.perNode) != q {
			return nil, fmt.Errorf("chl: QFDL cluster size %d does not match the build's %d nodes", q, len(ix.perNode))
		}
		perNode = ix.perNode
	}
	eng, err := query.NewEngine(mode, ix.ranked, perNode, q, query.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	return &QueryEngine{ix: ix, eng: eng}, nil
}

// Query answers one PPSD query (original ids) and reports its modeled
// latency on the simulated cluster.
func (qe *QueryEngine) Query(u, v int) (float64, time.Duration) {
	return qe.eng.Query(qe.ix.rank[u], qe.ix.rank[v])
}

// QueryPair is one batch query in original-id space.
type QueryPair struct {
	U, V int
}

// BatchResult reports a batch run; see the internal/query package for the
// cost model behind the modeled figures.
type BatchResult struct {
	Dists          []float64
	Throughput     float64 // queries per modeled second
	MeanLatency    time.Duration
	ModeledSeconds float64
	BytesSent      int64
	MessagesSent   int64
}

// Batch answers a batch of queries emerging at node 0.
func (qe *QueryEngine) Batch(pairs []QueryPair) *BatchResult {
	rp := make([]query.Pair, len(pairs))
	for i, p := range pairs {
		rp[i] = query.Pair{U: int32(qe.ix.rank[p.U]), V: int32(qe.ix.rank[p.V])}
	}
	r := qe.eng.Batch(rp)
	return &BatchResult{
		Dists:          r.Dists,
		Throughput:     r.Throughput,
		MeanLatency:    r.MeanLatency,
		ModeledSeconds: r.ModeledSeconds,
		BytesSent:      r.BytesSent,
		MessagesSent:   r.MessagesSent,
	}
}

// MemoryPerNode returns the label bytes each simulated node stores under
// this deployment (the memory column of Table 4).
func (qe *QueryEngine) MemoryPerNode() []int64 { return qe.eng.MemoryPerNode() }

// TotalMemory returns the cluster-wide label storage in bytes.
func (qe *QueryEngine) TotalMemory() int64 { return qe.eng.TotalMemory() }

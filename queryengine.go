package chl

import (
	"fmt"
	"time"

	"repro/internal/label"
	"repro/internal/query"
)

// QueryMode selects a distributed query strategy (§6 of the paper).
type QueryMode = query.Mode

// The three query modes.
const (
	// ModeQLSN replicates all labels on every node; each query is
	// answered locally by the node it emerges on. Lowest latency, highest
	// memory.
	ModeQLSN = query.QLSN
	// ModeQFDL partitions every vertex's labels across all nodes; each
	// query is broadcast and MIN-reduced. Lowest memory, broadcast-bound
	// latency.
	ModeQFDL = query.QFDL
	// ModeQDOL splits vertices into ζ partitions with C(ζ,2)=q and routes
	// each query point-to-point to the node owning its partition pair.
	// Best batch throughput at √q-scaled memory.
	ModeQDOL = query.QDOL
)

// QueryEngine answers PPSD queries on a simulated q-node cluster under one
// of the three modes, translating between original vertex ids and the
// index's rank space.
type QueryEngine struct {
	ix  *Index
	eng *query.Engine
}

// NewQueryEngine deploys the index's labels across q simulated nodes.
// ModeQFDL requires an index built by a distributed algorithm (it reuses
// the generator-node partitions); QLSN and QDOL work with any undirected
// index. Directed indexes are not yet supported by the distributed query
// engines.
func NewQueryEngine(ix *Index, mode QueryMode, q int) (*QueryEngine, error) {
	if ix.directed != nil {
		return nil, fmt.Errorf("chl: query engines support undirected indexes only")
	}
	var perNode []*label.Index
	if mode == ModeQFDL {
		if ix.perNode == nil {
			return nil, fmt.Errorf("chl: QFDL needs a distributed build (Options.Nodes=%d, got a shared-memory index)", q)
		}
		if len(ix.perNode) != q {
			return nil, fmt.Errorf("chl: QFDL cluster size %d does not match the build's %d nodes", q, len(ix.perNode))
		}
		perNode = ix.perNode
	}
	eng, err := query.NewEngine(mode, ix.ranked, perNode, q, query.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	return &QueryEngine{ix: ix, eng: eng}, nil
}

// Query answers one PPSD query (original ids) and reports its modeled
// latency on the simulated cluster.
func (qe *QueryEngine) Query(u, v int) (float64, time.Duration) {
	return qe.eng.Query(qe.ix.rank[u], qe.ix.rank[v])
}

// QueryPair is one batch query in original-id space.
type QueryPair struct {
	U, V int
}

// BatchResult reports a batch run; see the internal/query package for the
// cost model behind the modeled figures.
type BatchResult struct {
	Dists          []float64
	Throughput     float64 // queries per modeled second
	MeanLatency    time.Duration
	ModeledSeconds float64
	BytesSent      int64
	MessagesSent   int64
}

// Batch answers a batch of queries emerging at node 0.
func (qe *QueryEngine) Batch(pairs []QueryPair) *BatchResult {
	rp := make([]query.Pair, len(pairs))
	for i, p := range pairs {
		rp[i] = query.Pair{U: int32(qe.ix.rank[p.U]), V: int32(qe.ix.rank[p.V])}
	}
	r := qe.eng.Batch(rp)
	return &BatchResult{
		Dists:          r.Dists,
		Throughput:     r.Throughput,
		MeanLatency:    r.MeanLatency,
		ModeledSeconds: r.ModeledSeconds,
		BytesSent:      r.BytesSent,
		MessagesSent:   r.MessagesSent,
	}
}

// MemoryPerNode returns the label bytes each simulated node stores under
// this deployment (the memory column of Table 4).
func (qe *QueryEngine) MemoryPerNode() []int64 { return qe.eng.MemoryPerNode() }

// TotalMemory returns the cluster-wide label storage in bytes.
func (qe *QueryEngine) TotalMemory() int64 { return qe.eng.TotalMemory() }

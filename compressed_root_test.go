package chl_test

// End-to-end coverage of compressed label blocks (CHFX v4): kernel parity
// against the fixed-width index on the agreement fixtures, save → heap /
// mmap load → thaw round trips for both directednesses, the on-disk
// savings bar, batch serving, and sharded routing over compressed shard
// files. The CI race job runs all of this under -race.

import (
	"bytes"
	"math/rand"
	"testing"

	chl "repro"
)

// compress returns the compressed sibling of fx.
func compress(t *testing.T, fx *chl.FlatIndex) *chl.FlatIndex {
	t.Helper()
	cfx, err := fx.Compress()
	if err != nil {
		t.Fatal(err)
	}
	if !cfx.Compressed() {
		t.Fatal("Compress returned an uncompressed index")
	}
	if cfx.Directed() != fx.Directed() {
		t.Fatal("Compress changed directedness")
	}
	if cfx.TotalLabels() != fx.TotalLabels() || cfx.NumVertices() != fx.NumVertices() {
		t.Fatalf("Compress changed shape: %d/%d labels, %d/%d vertices",
			cfx.TotalLabels(), fx.TotalLabels(), cfx.NumVertices(), fx.NumVertices())
	}
	return cfx
}

// kernelParity sweeps random pairs through every public kernel of cfx and
// requires bit-identical answers to fx.
func kernelParity(t *testing.T, fx, cfx *chl.FlatIndex, pairs int, seed int64) {
	t.Helper()
	n := fx.NumVertices()
	rng := rand.New(rand.NewSource(seed))
	s := cfx.NewScratch()
	for i := 0; i < pairs; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		want := fx.Query(u, v)
		if got := cfx.Query(u, v); got != want {
			t.Fatalf("compressed query(%d,%d) = %v, fixed-width says %v", u, v, got, want)
		}
		if got := cfx.QueryWith(s, u, v); got != want {
			t.Fatalf("compressed QueryWith(%d,%d) = %v, want %v", u, v, got, want)
		}
		wd, wh, wok := fx.QueryHub(u, v)
		gd, gh, gok := cfx.QueryHub(u, v)
		if gd != wd || gok != wok || (wok && gh != wh) {
			t.Fatalf("compressed QueryHub(%d,%d) = (%v,%d,%v), want (%v,%d,%v)", u, v, gd, gh, gok, wd, wh, wok)
		}
		sd, sh, sok := cfx.QueryHubWith(s, u, v)
		if sd != wd || sok != wok || (wok && sh != wh) {
			t.Fatalf("compressed QueryHubWith(%d,%d) = (%v,%d,%v), want (%v,%d,%v)", u, v, sd, sh, sok, wd, wh, wok)
		}
	}
}

// The compressed acceptance bar at the kernel level: on the undirected
// agreement fixtures, every kernel of the compressed index answers
// bit-identically to the fixed-width one.
func TestCompressedFlatParity(t *testing.T) {
	for name, g := range map[string]*chl.Graph{
		"scalefree": chl.GenerateScaleFree(600, 3, 1),
		"road":      chl.GenerateRoadGrid(24, 24, 2),
		"sparse":    chl.GenerateRandom(300, 200, 9, 3), // disconnected pairs exercise Infinity
	} {
		t.Run(name, func(t *testing.T) {
			_, fx := buildFrozen(t, g)
			kernelParity(t, fx, compress(t, fx), 1000, 7)
		})
	}
}

// Directed compressed parity: both label halves compress, and directed
// queries (both orders) stay exact.
func TestCompressedDirectedParity(t *testing.T) {
	for name, g := range directedFixtures() {
		t.Run(name, func(t *testing.T) {
			ix, fx := buildDirectedFrozen(t, g)
			cfx := compress(t, fx)
			if !cfx.Directed() {
				t.Fatal("compressed directed index reports undirected")
			}
			u0, v0 := findAsymmetricPair(t, ix)
			if cfx.Query(u0, v0) != ix.Query(u0, v0) || cfx.Query(v0, u0) != ix.Query(v0, u0) {
				t.Fatal("compressed index conflates the asymmetric pair's orders")
			}
			kernelParity(t, fx, cfx, 1500, 7)
		})
	}
}

// Freeze → save v4 → heap/mmap load → thaw on both directednesses. Also
// pins the acceptance bar: the v4 file is at least 25% smaller on disk
// than the v2/v3 file of the same fixture.
func TestCompressedSaveLoadMmapThaw(t *testing.T) {
	type fixture struct {
		ix *chl.Index
		fx *chl.FlatIndex
	}
	fixtures := map[string]fixture{}
	{
		ix, fx := buildFrozen(t, chl.GenerateScaleFree(400, 3, 4))
		fixtures["undirected"] = fixture{ix, fx}
	}
	{
		ix, fx := buildDirectedFrozen(t, chl.GenerateRandomDirected(250, 1200, 9, 3))
		fixtures["directed"] = fixture{ix, fx}
	}
	for name, f := range fixtures {
		t.Run(name, func(t *testing.T) {
			cfx := compress(t, f.fx)
			var plain, comp bytes.Buffer
			if err := f.fx.Save(&plain); err != nil {
				t.Fatal(err)
			}
			if err := cfx.Save(&comp); err != nil {
				t.Fatal(err)
			}
			if ver := comp.Bytes()[4]; ver != 4 {
				t.Fatalf("compressed flat file written as CHFX version %d, want 4", ver)
			}
			if comp.Len() > plain.Len()*3/4 {
				t.Fatalf("compressed file is %d bytes vs %d fixed-width — less than 25%% saved", comp.Len(), plain.Len())
			}
			path := t.TempDir() + "/ix.flat"
			if err := cfx.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			heap, err := chl.LoadFlatFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mapped, err := chl.OpenFlat(path)
			if err != nil {
				t.Fatal(err)
			}
			defer mapped.Close()
			if !mapped.Mapped() {
				t.Skip("mmap unavailable on this host")
			}
			for _, back := range []*chl.FlatIndex{heap, mapped} {
				if !back.Compressed() {
					t.Fatal("loaded v4 index reports uncompressed")
				}
				if back.Directed() != f.fx.Directed() {
					t.Fatal("loaded v4 index changed directedness")
				}
				if back.TotalLabels() != f.fx.TotalLabels() || back.NumVertices() != f.fx.NumVertices() {
					t.Fatalf("shape changed: %d/%d labels, %d/%d vertices",
						back.TotalLabels(), f.fx.TotalLabels(), back.NumVertices(), f.fx.NumVertices())
				}
			}
			if mapped.Prefault() == 0 {
				t.Error("Prefault walked 0 pages on a mapped compressed index")
			}
			th := heap.Thaw()
			n := f.fx.NumVertices()
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 1000; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				want := f.ix.Query(u, v)
				if heap.Query(u, v) != want {
					t.Fatalf("heap-loaded v4 index disagrees at (%d,%d)", u, v)
				}
				if mapped.Query(u, v) != want {
					t.Fatalf("mapped v4 index disagrees at (%d,%d)", u, v)
				}
				if th.Query(u, v) != want {
					t.Fatalf("thawed v4 index disagrees at (%d,%d)", u, v)
				}
			}
			// Decompress is the exact inverse of Compress.
			d := mapped.Decompress()
			if d.Compressed() {
				t.Fatal("Decompress returned a compressed index")
			}
			for i := 0; i < 200; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if d.Query(u, v) != f.ix.Query(u, v) {
					t.Fatalf("decompressed index disagrees at (%d,%d)", u, v)
				}
			}
		})
	}
}

// The parallel batch engine serves a compressed index — cached and
// uncached — identically to the in-memory index.
func TestCompressedBatchEngine(t *testing.T) {
	g := chl.GenerateScaleFree(500, 3, 9)
	ix, fx := buildFrozen(t, g)
	cfx := compress(t, fx)
	for _, cached := range []bool{false, true} {
		eng := chl.NewBatchEngineFlat(cfx)
		if cached {
			eng.SetCache(chl.NewCache(1 << 12))
		}
		rng := rand.New(rand.NewSource(13))
		pairs := make([]chl.QueryPair, 5000)
		for i := range pairs {
			pairs[i] = chl.QueryPair{U: rng.Intn(500), V: rng.Intn(500)}
		}
		for round := 0; round < 2; round++ {
			dists := eng.Batch(pairs)
			for i, p := range pairs {
				if want := ix.Query(p.U, p.V); dists[i] != want {
					t.Fatalf("cached=%v round %d batch (%d,%d) = %v, want %v", cached, round, p.U, p.V, dists[i], want)
				}
			}
		}
		if cached {
			if st := eng.Cache().Stats(); st.Hits == 0 {
				t.Fatalf("cache unused on a compressed engine: %+v", st)
			}
		}
	}
}

// Sharded serving over compressed shard files: SaveShards of a compressed
// index writes v4 slices, every shard server loads and audits them, and
// the router answers byte-identically to the in-memory index — including
// cross-shard joins, which materialize packed rows out of compressed
// blocks over /shardquery.
func TestCompressedShardedRouterParity(t *testing.T) {
	type fixture struct {
		ix *chl.Index
		fx *chl.FlatIndex
	}
	fixtures := map[string]fixture{}
	{
		ix, fx := buildFrozen(t, chl.GenerateScaleFree(300, 3, 5))
		fixtures["undirected"] = fixture{ix, fx}
	}
	{
		ix, fx := buildDirectedFrozen(t, chl.GenerateRandomDirected(260, 1300, 9, 8))
		fixtures["directed"] = fixture{ix, fx}
	}
	for name, f := range fixtures {
		t.Run(name, func(t *testing.T) {
			cfx := compress(t, f.fx)
			c := startCluster(t, cfx, 3, 1<<12)
			defer c.close()
			for i, s := range c.servers {
				if st := s.Stats(); !st.Compressed {
					t.Fatalf("shard %d does not report a compressed snapshot: %+v", i, st)
				}
			}
			n := f.fx.NumVertices()
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 800; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				got, err := c.router.Query(u, v)
				if err != nil {
					t.Fatalf("router query(%d,%d): %v", u, v, err)
				}
				if want := f.ix.Query(u, v); got != want {
					t.Fatalf("router over compressed shards: query(%d,%d) = %v, want %v", u, v, got, want)
				}
			}
			pairs := make([]chl.QueryPair, 400)
			for i := range pairs {
				pairs[i] = chl.QueryPair{U: rng.Intn(n), V: rng.Intn(n)}
			}
			dists, err := c.router.Batch(pairs)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range pairs {
				if want := f.ix.Query(p.U, p.V); dists[i] != want {
					t.Fatalf("batch (%d,%d) = %v, want %v", p.U, p.V, dists[i], want)
				}
			}
			if st := c.router.Stats(); st.CrossJoins == 0 {
				t.Fatal("no cross-shard joins exercised; fixture or partition degenerate")
			}
		})
	}
}

package chl_test

// Golden byte-stability tests for the CHFX container. The builds below
// are fully deterministic (seeded generators + the sequential PLL
// constructor), so the saved files must hash to the same SHA-256 on every
// run, platform, and future PR. The v2/v3 hashes are the regression the
// compressed-format work promised: adding CHFX v4 must not perturb a
// single byte of the formats existing deployments mmap. The v4 hashes pin
// the new format the same way for the next change.
//
// If one of these fails, a format byte changed. That is occasionally
// intentional (a deliberate version bump) — then the hash may be updated
// in the same commit that documents the format change — but it must never
// happen as a side effect.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	chl "repro"
)

// goldenBuild builds the deterministic fixtures the hashes below were
// computed from.
func goldenBuild(t *testing.T, directed bool) *chl.FlatIndex {
	t.Helper()
	g := chl.GenerateScaleFree(200, 3, 6)
	if directed {
		g = chl.GenerateRandomDirected(180, 900, 9, 6)
	}
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoSeqPLL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fx, err := ix.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func goldenCheck(t *testing.T, fx *chl.FlatIndex, wantVer byte, wantSHA string) {
	t.Helper()
	var buf bytes.Buffer
	if err := fx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if ver := buf.Bytes()[4]; ver != wantVer {
		t.Fatalf("saved as CHFX version %d, want %d", ver, wantVer)
	}
	sum := sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != wantSHA {
		t.Fatalf("CHFX v%d bytes drifted: sha256 = %s, want %s (%d bytes)", wantVer, got, wantSHA, buf.Len())
	}
}

// Without the compression flag, undirected saves stay version 2 —
// byte-identical to every file written before CHFX v4 existed.
func TestGoldenUndirectedV2BytesStable(t *testing.T) {
	goldenCheck(t, goldenBuild(t, false), 2,
		"c7ba1cdb050ab5c2135de0fe695dcf17c47ed15e686044cc44bf68067a2bfe0e")
}

// Without the compression flag, directed saves stay version 3.
func TestGoldenDirectedV3BytesStable(t *testing.T) {
	goldenCheck(t, goldenBuild(t, true), 3,
		"d75545bf56f430457b4d3e408dec7cf563f80474ce08f10be9ab5af880917574")
}

// Compressed saves are version 4 and themselves byte-stable.
func TestGoldenCompressedV4BytesStable(t *testing.T) {
	for _, tc := range []struct {
		name     string
		directed bool
		sha      string
	}{
		{"undirected", false, "30b233b1e05bf8c6187e82e468aad76198e3153c259d153e2741b51c281b31db"},
		{"directed", true, "42292dc0a9ba6dd773101c6f1bb1a97ced1544ee18add0061dcec9e459952b87"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfx, err := goldenBuild(t, tc.directed).Compress()
			if err != nil {
				t.Fatal(err)
			}
			goldenCheck(t, cfx, 4, tc.sha)
		})
	}
}

package chl

import "repro/internal/order"

// Order is a total order on vertices — the "network hierarchy" R the
// Canonical Hub Labeling is defined against. Perm lists vertex ids from
// highest rank to lowest; Rank is the inverse.
type Order = order.Order

// RankByDegree ranks vertices by decreasing degree — the paper's ordering
// for scale-free networks.
func RankByDegree(g *Graph) *Order { return order.ByDegree(g) }

// RankByBetweenness ranks vertices by approximate betweenness centrality
// from `samples` sampled shortest path trees — the paper's ordering for
// road networks.
func RankByBetweenness(g *Graph, samples int, seed int64) *Order {
	return order.ByApproxBetweenness(g, samples, seed)
}

// RankAuto picks the paper's default ordering for the graph's topology:
// sampled betweenness for road-like graphs, degree otherwise.
func RankAuto(g *Graph, seed int64) *Order { return order.ForGraph(g, seed) }

// RankIdentity ranks vertex 0 highest, then 1, and so on.
func RankIdentity(n int) *Order { return order.Identity(n) }

// RankRandom returns a uniformly random hierarchy (the CHL is defined for
// any R; useful for adversarial testing).
func RankRandom(n int, seed int64) *Order { return order.Random(n, seed) }

// RankFromPerm builds an Order from an explicit permutation listing vertex
// ids from highest rank to lowest.
func RankFromPerm(perm []int) (*Order, error) { return order.FromPerm(perm) }

package chl_test

// Tests for the §5.4 extensions: path retrieval and the PLaNT-first GLL
// superstep.

import (
	"math/rand"
	"testing"

	chl "repro"
	"repro/internal/sssp"
)

func TestBuildWithPathsRetrievesRealPaths(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := chl.GenerateRandom(80, 200, 7, seed)
		px, err := chl.BuildWithPaths(g, chl.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			u, v := rng.Intn(80), rng.Intn(80)
			want := sssp.Dijkstra(g, u)[v]
			path, d, ok := px.Path(u, v)
			if want == chl.Infinity {
				if ok {
					t.Fatalf("path found for unreachable pair (%d,%d)", u, v)
				}
				continue
			}
			if !ok {
				t.Fatalf("no path for connected pair (%d,%d)", u, v)
			}
			if d != want {
				t.Fatalf("path length %v, want %v", d, want)
			}
			if path[0] != u || path[len(path)-1] != v {
				t.Fatalf("path endpoints %d..%d, want %d..%d", path[0], path[len(path)-1], u, v)
			}
			// Every hop must be a real edge and the weights must sum to d.
			var sum float64
			for j := 1; j < len(path); j++ {
				w, exists := g.HasEdge(path[j-1], path[j])
				if !exists {
					t.Fatalf("path hop (%d,%d) is not an edge", path[j-1], path[j])
				}
				sum += w
			}
			if sum != d {
				t.Fatalf("path weights sum to %v, query says %v", sum, d)
			}
		}
		// Self path.
		if p, d, ok := px.Path(5, 5); !ok || d != 0 || len(p) != 1 {
			t.Fatalf("self path = %v,%v,%v", p, d, ok)
		}
	}
}

func TestBuildWithPathsRejectsDirected(t *testing.T) {
	g := chl.GenerateRandomDirected(20, 60, 5, 1)
	if _, err := chl.BuildWithPaths(g, chl.Options{}); err == nil {
		t.Fatal("directed graph accepted")
	}
}

func TestPlantFirstSuperstepSameCHL(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := chl.GenerateScaleFree(150, 3, seed)
		ord := chl.RankByDegree(g)
		plain, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Order: ord, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		pf, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoGLL, Order: ord, Workers: 3, PlantFirstSuperstep: true})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Stats() != pf.Stats() {
			t.Fatalf("seed %d: stats differ: %+v vs %+v", seed, plain.Stats(), pf.Stats())
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			u, v := rng.Intn(150), rng.Intn(150)
			if plain.Query(u, v) != pf.Query(u, v) {
				t.Fatalf("seed %d: queries disagree at (%d,%d)", seed, u, v)
			}
		}
	}
}

package chl_test

import (
	"bytes"
	"testing"

	chl "repro"
)

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("CHIX"),             // truncated after magic
		[]byte("NOPE\x00\x00\x00"), // wrong magic
		[]byte("CHIX\x00\x00\x00"), // truncated perm
	}
	for i, c := range cases {
		if _, err := chl.Load(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestLoadRejectsTruncatedIndex(t *testing.T) {
	g := chl.GenerateScaleFree(40, 3, 1)
	ix, err := chl.Build(g, chl.Options{Algorithm: chl.AlgoSeqPLL})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []int{2, 3, 4} {
		cut := len(full) / frac
		if _, err := chl.Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestSaveLoadFileRoundTrip(t *testing.T) {
	g := chl.GenerateRoadGrid(6, 6, 1)
	ix, err := chl.Build(g, chl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/x.chl"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := chl.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 36; u += 5 {
		for v := 0; v < 36; v += 7 {
			if ix.Query(u, v) != back.Query(u, v) {
				t.Fatalf("mismatch at (%d,%d)", u, v)
			}
		}
	}
	if _, err := chl.LoadFile(t.TempDir() + "/missing.chl"); err == nil {
		t.Fatal("missing file accepted")
	}
}
